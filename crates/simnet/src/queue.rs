//! A deterministic event queue keyed by [`SimTime`].
//!
//! Events scheduled for the same instant are delivered in insertion order
//! (FIFO), which keeps simulations reproducible regardless of payload type.
//!
//! # Engine
//!
//! [`EventQueue`] is a hierarchical timer wheel: 11 levels of 64 slots,
//! each level bucketing events by one 6-bit group of their nanosecond
//! timestamp (level 0 = 1 ns slots, level 1 = 64 ns, … level 10 ≈ 36.6
//! virtual years per slot). 11 × 6 = 66 bits cover the entire `u64`
//! timestamp domain, so arbitrarily far-future events — including
//! [`SimTime::MAX`] sentinels — park in the top levels with no separate
//! overflow structure. Scheduling is O(1); popping finds the earliest
//! occupied slot through per-level occupancy bitmaps and cascades coarse
//! buckets downward as the clock reaches them, so each event is touched at
//! most once per level over its lifetime. Same-instant events share one
//! level-0 bucket and are delivered in `seq` (insertion) order, preserving
//! the `(at, seq)` total order the simulation's byte-determinism contract
//! is built on.
//!
//! # Payload slab
//!
//! Payloads live in a generational slab owned by the queue; the wheel's
//! buckets hold only 24-byte `(at, seq, id)` slots. Cascading a coarse
//! bucket and sorting a same-instant run therefore move plain-old-data
//! slots, never the payloads themselves — for the runtime's event enum
//! (~100 bytes) that cuts the memory traffic of a cascade ~5×. Freed slab
//! cells go on a free list and are reused, and cascaded bucket
//! allocations are recycled through a spare pool to the slots filling
//! ahead of the clock, so the steady-state schedule/pop cycle allocates
//! nothing once capacities have converged (the counting-allocator harness
//! in `c4h-bench` asserts exactly this).
//!
//! Two baselines survive for differential testing and benchmarking:
//! [`reference::RefQueue`], the pre-wheel `BinaryHeap` scheduler, and
//! [`reference::InlineWheel`], the first-generation wheel that stored
//! payloads inline in its buckets. `tests/queue_equiv.rs` drives all three
//! in lockstep; `engine_throughput` measures the slab wheel against both.

use std::collections::VecDeque;
use std::mem;
use std::time::Duration;

use crate::time::SimTime;

/// Minimum capacity (in slots) a cascaded bucket must have for its
/// allocation to be donated to the spare pool rather than restored in
/// place. Small buckets recur too often to be worth pooling — donating
/// them would leave most of the wheel at zero capacity and turn every
/// insert into an adoption check; only the big accumulator buckets carry
/// capacity worth recycling across slots.
const SPARE_MIN: usize = 64;

/// Maximum donated allocations held in the spare pool. A small hard cap
/// keeps both sides of the recycling O(1): donation falls back to
/// restoring in place when the pool is full (the pre-pool behavior), and
/// adoption's largest-first scan touches at most this many entries. A
/// handful is enough — only one accumulator slot per active level needs
/// big capacity at a time.
const SPARE_MAX: usize = 8;

/// Bits of the timestamp consumed per wheel level.
const SLOT_BITS: usize = 6;
/// Slots per level (`2^SLOT_BITS`).
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed to cover all 64 timestamp bits (`ceil(64 / 6)`).
/// Public so introspection consumers can size per-level views.
pub const LEVELS: usize = 11;

/// A pending wheel slot: the scheduled instant (nanoseconds), the
/// insertion sequence number breaking same-instant ties, and the payload's
/// slab cell. Plain old data — cascades and same-instant sorts copy these
/// 24 bytes, never the payload.
#[derive(Debug, Clone, Copy)]
struct Slot {
    at: u64,
    seq: u64,
    id: u32,
    /// Generation of the slab cell when this slot was filed; checked on
    /// redemption (debug builds) to catch internal filing bugs — an id
    /// must never be redeemed after its cell was freed and reused.
    gen: u32,
}

/// One wheel bucket: its pending slots plus a cached minimum timestamp,
/// maintained on push and reset on drain, so finding the earliest event
/// never rescans bucket contents.
#[derive(Debug)]
struct Bucket {
    entries: Vec<Slot>,
    min_at: u64,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            entries: Vec::new(),
            min_at: u64::MAX,
        }
    }
}

/// A slab cell: the payload (taken on pop) and the cell's generation,
/// bumped on every free so stale slots are detectable.
#[derive(Debug)]
struct Cell<E> {
    gen: u32,
    payload: Option<E>,
}

/// A min-priority queue of simulation events ordered by virtual time.
///
/// The queue also tracks the current virtual clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Scheduling into the past is
/// a programming error and panics, because it would silently reorder the
/// simulation.
///
/// # Examples
///
/// ```
/// use c4h_simnet::{EventQueue, SimTime};
/// use std::time::Duration;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(Duration::from_millis(5), "second");
/// q.schedule_at(SimTime::from_millis(1), "first");
///
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(1), "first"));
/// assert_eq!(q.now(), SimTime::from_millis(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `LEVELS × SLOTS` buckets, flattened level-major.
    buckets: Vec<Bucket>,
    /// One occupancy bit per slot, per level: bit `s` of `occupied[l]` is
    /// set iff `buckets[l * SLOTS + s]` is non-empty.
    occupied: [u64; LEVELS],
    /// Slots at exactly `now`, drained from their level-0 bucket and
    /// sorted by `seq`; popped from the front. This is the hot path: a
    /// burst of same-instant events costs one bucket drain, then pure
    /// `VecDeque` pops.
    ready: VecDeque<Slot>,
    /// The payload arena. Cells are reused through `free`; capacity
    /// converges to the peak pending population and then stays put.
    slab: Vec<Cell<E>>,
    /// Free slab cells, reused LIFO.
    free: Vec<u32>,
    /// Spare bucket allocations recycled across slots. Cascading a coarse
    /// bucket empties a slot that will not refill until the clock wraps
    /// its entire level, so parking the allocation there would strand it;
    /// instead it is pooled here and handed to the next zero-capacity
    /// bucket that fills — typically the accumulator slot just ahead of
    /// the clock, which would otherwise grow from scratch on every
    /// first visit forever.
    spare: Vec<Vec<Slot>>,
    now: u64,
    len: usize,
    next_seq: u64,
    /// Coarse-bucket cascades performed by `pop` since creation.
    cascades: u64,
    /// Total slots re-placed by those cascades.
    cascaded_slots: u64,
}

/// A point-in-time view of an [`EventQueue`]'s internals, for the engine
/// introspection surface. Pure observation: taking one never mutates the
/// queue, draws no randomness, and costs a handful of popcounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Pending events.
    pub len: usize,
    /// Events drained into the same-instant ready run, not yet popped.
    pub ready: usize,
    /// Coarse-bucket cascades performed since creation.
    pub cascades: u64,
    /// Total slots re-placed by those cascades.
    pub cascaded_slots: u64,
    /// Occupied slots per wheel level (popcount of each occupancy bitmap).
    pub level_occupancy: [u32; LEVELS],
    /// Payload slab cells allocated (live + free).
    pub slab_cells: usize,
    /// Slab cells on the free list.
    pub free_cells: usize,
    /// Bucket allocations parked in the spare pool.
    pub spare_buckets: usize,
    /// Total slot capacity of the spare pool.
    pub spare_capacity: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The wheel coordinates of timestamp `at` relative to clock `now`:
/// the level of the highest 6-bit group where they differ (0 when equal),
/// and `at`'s slot index within that level.
fn level_slot(now: u64, at: u64) -> (usize, usize) {
    let xor = at ^ now;
    let level = if xor == 0 {
        0
    } else {
        (63 - xor.leading_zeros() as usize) / SLOT_BITS
    };
    let slot = ((at >> (level * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
    (level, slot)
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..LEVELS * SLOTS).map(|_| Bucket::new()).collect(),
            occupied: [0; LEVELS],
            ready: VecDeque::new(),
            slab: Vec::new(),
            free: Vec::new(),
            spare: Vec::new(),
            now: 0,
            len: 0,
            next_seq: 0,
            cascades: 0,
            cascaded_slots: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Snapshots the wheel's internals (see [`QueueStats`]).
    pub fn stats(&self) -> QueueStats {
        let mut level_occupancy = [0u32; LEVELS];
        for (l, bits) in self.occupied.iter().enumerate() {
            level_occupancy[l] = bits.count_ones();
        }
        QueueStats {
            len: self.len,
            ready: self.ready.len(),
            cascades: self.cascades,
            cascaded_slots: self.cascaded_slots,
            level_occupancy,
            slab_cells: self.slab.len(),
            free_cells: self.free.len(),
            spare_buckets: self.spare.len(),
            spare_capacity: self.spare.iter().map(Vec::capacity).sum(),
        }
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at.as_nanos() >= self.now,
            "cannot schedule into the past: at={at} now={}",
            SimTime::from_nanos(self.now)
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let (id, gen) = self.store(payload);
        self.insert(Slot {
            at: at.as_nanos(),
            seq,
            id,
            gen,
        });
        self.len += 1;
    }

    /// Schedules `payload` after a relative `delay` from the current time.
    pub fn schedule_in(&mut self, delay: Duration, payload: E) {
        let at = SimTime::from_nanos(self.now) + delay;
        self.schedule_at(at, payload);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.ready.is_empty() {
            return Some(SimTime::from_nanos(self.now));
        }
        self.earliest_bucket()
            .map(|(_, _, at)| SimTime::from_nanos(at))
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if let Some(s) = self.ready.pop_front() {
                debug_assert_eq!(s.at, self.now, "ready entries live at the clock instant");
                if let Some(next) = self.ready.front() {
                    self.prefetch_cell(next.id);
                }
                self.len -= 1;
                return Some((SimTime::from_nanos(s.at), self.redeem(s)));
            }
            let (level, slot, at) = self.earliest_bucket()?;
            debug_assert!(at >= self.now, "wheel surfaced an event from the past");
            // Advance the clock to the earliest pending instant, then move
            // that bucket: a level-0 bucket holds exactly the events at
            // `at` and drains into the ready run; a coarser bucket spans a
            // range of instants and cascades down a level (re-placement is
            // relative to the new clock, so entries at exactly `at` land
            // in the level-0 slot picked up on the next loop iteration).
            // Both moves copy 24-byte slots; payloads never leave the slab.
            self.now = at;
            let idx = level * SLOTS + slot;
            self.occupied[level] &= !(1u64 << slot);
            // Most instants hold exactly one event; skip the
            // drain/sort/ready round trip and redeem it in place.
            if level == 0 && self.buckets[idx].entries.len() == 1 {
                let s = self.buckets[idx].entries[0];
                self.buckets[idx].entries.clear();
                self.buckets[idx].min_at = u64::MAX;
                self.len -= 1;
                return Some((SimTime::from_nanos(s.at), self.redeem(s)));
            }
            let mut drained = mem::take(&mut self.buckets[idx].entries);
            self.buckets[idx].min_at = u64::MAX;
            if level == 0 {
                debug_assert!(drained.iter().all(|s| s.at == at));
                // Start the payload reads now: the head of this run is
                // redeemed as soon as the sort and drain finish.
                for s in drained.iter().take(4) {
                    self.prefetch_cell(s.id);
                }
                drained.sort_unstable_by_key(|s| s.seq);
                self.ready.extend(drained.drain(..));
                // Level-0 slots recur every 64 ns of clock, so hand the
                // emptied allocation straight back to its bucket.
                self.buckets[idx].entries = drained;
            } else {
                self.cascades += 1;
                self.cascaded_slots += drained.len() as u64;
                for s in drained.drain(..) {
                    self.insert(s);
                }
                // A big coarse slot will not refill until the clock wraps
                // its whole level; pool the allocation for the bucket
                // that needs it next instead of stranding it here. Small
                // slots keep theirs — they recur constantly and pooling
                // them would just churn the pool. A full pool keeps the
                // largest allocations: evicting its smallest entry into
                // this bucket strands the least capacity, so the top
                // accumulators always round-trip through the pool.
                if drained.capacity() >= SPARE_MIN {
                    if self.spare.len() < SPARE_MAX {
                        self.spare.push(drained);
                    } else {
                        let min = (0..self.spare.len())
                            .min_by_key(|&i| self.spare[i].capacity())
                            .expect("spare pool is non-empty");
                        if self.spare[min].capacity() < drained.capacity() {
                            self.buckets[idx].entries = mem::replace(&mut self.spare[min], drained);
                        } else {
                            self.buckets[idx].entries = drained;
                        }
                    }
                } else {
                    self.buckets[idx].entries = drained;
                }
            }
        }
    }

    /// Advances the clock to `at` without delivering events.
    ///
    /// Useful when an external model (e.g. the flow network) decides the next
    /// interesting instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time, or if an event is
    /// pending before `at` (advancing past it would drop causality).
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at.as_nanos() >= self.now, "cannot rewind the clock");
        if let Some(t) = self.peek_time() {
            assert!(t >= at, "cannot advance past a pending event at {t}");
        }
        // Pending entries keep valid wheel coordinates across the jump:
        // every entry's timestamp is ≥ `at`, and an interval sharing a
        // binary prefix at its endpoints shares it throughout, so each
        // entry's stored level can only be coarser than (never below) its
        // ideal level relative to the new clock. `earliest_bucket` reads
        // coarse slots through their cached minima and `pop` cascades them
        // lazily, so no eager re-filing is needed.
        self.now = at.as_nanos();
    }

    /// Parks a payload in the slab, reusing a freed cell when one exists.
    fn store(&mut self, payload: E) -> (u32, u32) {
        match self.free.pop() {
            Some(id) => {
                let cell = &mut self.slab[id as usize];
                debug_assert!(cell.payload.is_none(), "free-listed cell still occupied");
                cell.payload = Some(payload);
                (id, cell.gen)
            }
            None => {
                let id = u32::try_from(self.slab.len()).expect("event slab exhausted");
                self.slab.push(Cell {
                    gen: 0,
                    payload: Some(payload),
                });
                (id, 0)
            }
        }
    }

    /// Hints the prefetcher at a slab cell about to be redeemed.
    ///
    /// Payload cells go cold between schedule and redemption (every other
    /// pending event is written in between), so without the hint each pop
    /// stalls on the cell read — the one place the arena's
    /// move-slots-not-payloads design touches uncached memory.
    #[inline]
    fn prefetch_cell(&self, id: u32) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `id` indexes a live slab cell; prefetch has no effect
        // on program semantics even for a dangling address.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(
                self.slab.as_ptr().add(id as usize).cast::<i8>(),
                _MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = id;
    }

    /// Takes a popped slot's payload back out of the slab, bumping the
    /// cell's generation and returning the cell to the free list.
    fn redeem(&mut self, s: Slot) -> E {
        let cell = &mut self.slab[s.id as usize];
        debug_assert_eq!(cell.gen, s.gen, "slot redeemed against a reused cell");
        let payload = cell.payload.take().expect("slot points at an empty cell");
        cell.gen = cell.gen.wrapping_add(1);
        self.free.push(s.id);
        payload
    }

    /// Files a slot into the wheel relative to the current clock.
    fn insert(&mut self, s: Slot) {
        let (level, slot) = level_slot(self.now, s.at);
        let idx = level * SLOTS + slot;
        if self.buckets[idx].entries.capacity() == 0 && !self.spare.is_empty() {
            // First fill since this slot's last cascade (or ever): adopt
            // the largest pooled allocation. Accumulator buckets inherit
            // the high-water capacity of their predecessors, so the
            // steady-state schedule/pop cycle stays allocation-free even
            // as the clock sweeps into virgin slots. The scan is cheap:
            // adoption only happens on a slot's first fill per level wrap.
            let best = (0..self.spare.len())
                .max_by_key(|&i| self.spare[i].capacity())
                .expect("spare pool is non-empty");
            self.buckets[idx].entries = self.spare.swap_remove(best);
        }
        let b = &mut self.buckets[idx];
        b.min_at = b.min_at.min(s.at);
        b.entries.push(s);
        self.occupied[level] |= 1u64 << slot;
    }

    /// The bucket holding the earliest pending event:
    /// `(level, slot, min_at)`.
    ///
    /// Per level, only slots at or after the clock's own slot can be
    /// occupied (entries are never in the past), and their time windows
    /// ascend with the slot index, so the first occupied slot holds the
    /// level's minimum; the cached `min_at` makes the cross-level compare
    /// exact even for coarse buckets. Ties prefer the highest level so
    /// `pop` cascades stale coarse buckets before draining the level-0
    /// bucket of the same instant — all same-instant events must share one
    /// ready run for `seq` ordering to be global.
    fn earliest_bucket(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for level in 0..LEVELS {
            let cursor = (self.now >> (level * SLOT_BITS)) & (SLOTS as u64 - 1);
            let mask = self.occupied[level] & (!0u64 << cursor);
            if mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                let at = self.buckets[level * SLOTS + slot].min_at;
                if best.is_none_or(|(_, _, b)| at <= b) {
                    best = Some((level, slot, at));
                }
            }
        }
        best
    }
}

pub mod reference {
    //! Reference schedulers kept for differential testing and benchmark
    //! baselines. Production code uses [`EventQueue`](super::EventQueue);
    //! these types exist so tests can prove the engines agree on every
    //! schedule/pop/advance sequence and benches can measure the speedups.
    //!
    //! * [`RefQueue`] — the original `BinaryHeap` scheduler, the simplest
    //!   possible statement of the `(at, seq)` contract.
    //! * [`InlineWheel`] — the first-generation hierarchical timer wheel,
    //!   which stored payloads inline in its buckets (so cascades moved
    //!   whole payloads). The slab wheel's throughput gains are measured
    //!   against this baseline.

    use std::collections::BinaryHeap;
    use std::collections::VecDeque;
    use std::mem;
    use std::time::Duration;

    use crate::time::SimTime;

    use super::{level_slot, LEVELS, SLOTS, SLOT_BITS};

    /// A pending entry in the [`RefQueue`].
    #[derive(Debug)]
    struct Scheduled<E> {
        at: SimTime,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }

    impl<E> Eq for Scheduled<E> {}

    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert so the earliest event pops
            // first, breaking ties by insertion sequence for determinism.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// The `BinaryHeap`-backed reference implementation of the event-queue
    /// contract: identical API and `(at, seq)` delivery order to
    /// [`EventQueue`](super::EventQueue), O(log n) operations. Test and
    /// bench use only.
    #[derive(Debug)]
    pub struct RefQueue<E> {
        heap: BinaryHeap<Scheduled<E>>,
        now: SimTime,
        next_seq: u64,
    }

    impl<E> Default for RefQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> RefQueue<E> {
        /// Creates an empty queue with the clock at [`SimTime::ZERO`].
        pub fn new() -> Self {
            RefQueue {
                heap: BinaryHeap::new(),
                now: SimTime::ZERO,
                next_seq: 0,
            }
        }

        /// The current virtual time (the timestamp of the last popped
        /// event).
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// Returns `true` if no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Schedules `payload` at the absolute instant `at`.
        ///
        /// # Panics
        ///
        /// Panics if `at` is earlier than the current virtual time.
        pub fn schedule_at(&mut self, at: SimTime, payload: E) {
            assert!(
                at >= self.now,
                "cannot schedule into the past: at={at} now={}",
                self.now
            );
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Scheduled { at, seq, payload });
        }

        /// Schedules `payload` after a relative `delay` from the current
        /// time.
        pub fn schedule_in(&mut self, delay: Duration, payload: E) {
            let at = self.now + delay;
            self.schedule_at(at, payload);
        }

        /// Timestamp of the next pending event, if any.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|s| s.at)
        }

        /// Pops the earliest event, advancing the clock to its timestamp.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let s = self.heap.pop()?;
            debug_assert!(s.at >= self.now);
            self.now = s.at;
            Some((s.at, s.payload))
        }

        /// Advances the clock to `at` without delivering events.
        ///
        /// # Panics
        ///
        /// Panics if `at` is earlier than the current time, or if an event
        /// is pending before `at`.
        pub fn advance_to(&mut self, at: SimTime) {
            assert!(at >= self.now, "cannot rewind the clock");
            if let Some(t) = self.peek_time() {
                assert!(t >= at, "cannot advance past a pending event at {t}");
            }
            self.now = at;
        }
    }

    /// A pending entry in the [`InlineWheel`], payload stored inline.
    #[derive(Debug)]
    struct Entry<E> {
        at: u64,
        seq: u64,
        payload: E,
    }

    /// One inline-wheel slot with its cached minimum timestamp.
    #[derive(Debug)]
    struct Bucket<E> {
        entries: Vec<Entry<E>>,
        min_at: u64,
    }

    impl<E> Bucket<E> {
        fn new() -> Self {
            Bucket {
                entries: Vec::new(),
                min_at: u64::MAX,
            }
        }
    }

    /// The first-generation hierarchical timer wheel, preserved verbatim:
    /// identical wheel geometry and `(at, seq)` contract to
    /// [`EventQueue`](super::EventQueue), but payloads live inline in the
    /// buckets, so every cascade and same-instant sort moves whole
    /// payloads. Test and bench use only.
    #[derive(Debug)]
    pub struct InlineWheel<E> {
        buckets: Vec<Bucket<E>>,
        occupied: [u64; LEVELS],
        ready: VecDeque<Entry<E>>,
        now: u64,
        len: usize,
        next_seq: u64,
    }

    impl<E> Default for InlineWheel<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> InlineWheel<E> {
        /// Creates an empty queue with the clock at [`SimTime::ZERO`].
        pub fn new() -> Self {
            InlineWheel {
                buckets: (0..LEVELS * SLOTS).map(|_| Bucket::new()).collect(),
                occupied: [0; LEVELS],
                ready: VecDeque::new(),
                now: 0,
                len: 0,
                next_seq: 0,
            }
        }

        /// The current virtual time (the timestamp of the last popped
        /// event).
        pub fn now(&self) -> SimTime {
            SimTime::from_nanos(self.now)
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.len
        }

        /// Returns `true` if no events are pending.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Schedules `payload` at the absolute instant `at`.
        ///
        /// # Panics
        ///
        /// Panics if `at` is earlier than the current virtual time.
        pub fn schedule_at(&mut self, at: SimTime, payload: E) {
            assert!(
                at.as_nanos() >= self.now,
                "cannot schedule into the past: at={at} now={}",
                SimTime::from_nanos(self.now)
            );
            let seq = self.next_seq;
            self.next_seq += 1;
            self.insert(Entry {
                at: at.as_nanos(),
                seq,
                payload,
            });
            self.len += 1;
        }

        /// Schedules `payload` after a relative `delay` from the current
        /// time.
        pub fn schedule_in(&mut self, delay: Duration, payload: E) {
            let at = SimTime::from_nanos(self.now) + delay;
            self.schedule_at(at, payload);
        }

        /// Timestamp of the next pending event, if any.
        pub fn peek_time(&self) -> Option<SimTime> {
            if !self.ready.is_empty() {
                return Some(SimTime::from_nanos(self.now));
            }
            self.earliest_bucket()
                .map(|(_, _, at)| SimTime::from_nanos(at))
        }

        /// Pops the earliest event, advancing the clock to its timestamp.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            loop {
                if let Some(e) = self.ready.pop_front() {
                    debug_assert_eq!(e.at, self.now);
                    self.len -= 1;
                    return Some((SimTime::from_nanos(e.at), e.payload));
                }
                let (level, slot, at) = self.earliest_bucket()?;
                debug_assert!(at >= self.now);
                self.now = at;
                let idx = level * SLOTS + slot;
                self.occupied[level] &= !(1u64 << slot);
                let mut drained = mem::take(&mut self.buckets[idx].entries);
                self.buckets[idx].min_at = u64::MAX;
                if level == 0 {
                    debug_assert!(drained.iter().all(|e| e.at == at));
                    drained.sort_unstable_by_key(|e| e.seq);
                    self.ready.extend(drained.drain(..));
                } else {
                    for e in drained.drain(..) {
                        self.insert(e);
                    }
                }
                self.buckets[idx].entries = drained;
            }
        }

        /// Advances the clock to `at` without delivering events.
        ///
        /// # Panics
        ///
        /// Panics if `at` is earlier than the current time, or if an event
        /// is pending before `at`.
        pub fn advance_to(&mut self, at: SimTime) {
            assert!(at.as_nanos() >= self.now, "cannot rewind the clock");
            if let Some(t) = self.peek_time() {
                assert!(t >= at, "cannot advance past a pending event at {t}");
            }
            self.now = at.as_nanos();
        }

        fn insert(&mut self, e: Entry<E>) {
            let (level, slot) = level_slot(self.now, e.at);
            let b = &mut self.buckets[level * SLOTS + slot];
            b.min_at = b.min_at.min(e.at);
            b.entries.push(e);
            self.occupied[level] |= 1u64 << slot;
        }

        fn earliest_bucket(&self) -> Option<(usize, usize, u64)> {
            let mut best: Option<(usize, usize, u64)> = None;
            for level in 0..LEVELS {
                let cursor = (self.now >> (level * SLOT_BITS)) & (SLOTS as u64 - 1);
                let mask = self.occupied[level] & (!0u64 << cursor);
                if mask != 0 {
                    let slot = mask.trailing_zeros() as usize;
                    let at = self.buckets[level * SLOTS + slot].min_at;
                    if best.is_none_or(|(_, _, b)| at <= b) {
                        best = Some((level, slot, at));
                    }
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::{InlineWheel, RefQueue};
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), 3);
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(Duration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    #[should_panic(expected = "pending event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.advance_to(SimTime::from_millis(20));
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(1));
        assert_eq!(q.now(), SimTime::from_secs(1));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    /// Same instant scheduled from different clock positions: the entries
    /// start in different wheel levels but must merge into one seq-ordered
    /// delivery run.
    #[test]
    fn same_instant_entries_merge_across_levels() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(10);
        q.schedule_at(t, 0); // filed at a coarse level relative to now = 0
        q.schedule_at(SimTime::from_millis(9_999), -1);
        q.pop(); // now = 9.999 s: t is one millisecond out
        q.schedule_at(t, 1); // filed at a fine level relative to the new now
        q.schedule_at(t, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2], "seq order must survive cascades");
    }

    /// `stats()` observes cascades, occupancy, and slab population without
    /// perturbing the queue.
    #[test]
    fn stats_observe_without_mutating() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats().cascades, 0);
        for i in 0..100u64 {
            q.schedule_at(SimTime::from_millis(1 + i * 7), i);
        }
        let s = q.stats();
        assert_eq!(s.len, 100);
        assert_eq!(s.slab_cells, 100);
        assert!(s.level_occupancy.iter().map(|&n| n as u64).sum::<u64>() > 0);
        let before = q.peek_time();
        assert_eq!(q.peek_time(), before, "stats took no events");
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        let s = q.stats();
        assert_eq!(popped, 100);
        assert_eq!(s.len, 0);
        assert!(
            s.cascades > 0,
            "multi-millisecond spread must cascade coarse buckets"
        );
        assert!(s.cascaded_slots >= s.cascades);
        assert_eq!(s.free_cells, 100, "all payload cells returned to free");
    }

    /// Far-future events (including the `SimTime::MAX` sentinel) park in
    /// the top wheel levels and still pop in order.
    #[test]
    fn far_future_events_pop_in_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::MAX, 3);
        q.schedule_at(SimTime::from_secs(3_600 * 24 * 365), 2); // one year
        q.schedule_at(SimTime::from_millis(1), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.now(), SimTime::MAX);
    }

    /// Zero-delay re-arming from inside the pop loop: each rescheduled
    /// event lands at the same instant with a later seq, after events
    /// already queued there.
    #[test]
    fn zero_delay_rearm_delivers_after_queued_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(2);
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "a");
        q.schedule_in(Duration::ZERO, "rearmed"); // at == now == t
        let (t2, second) = q.pop().unwrap();
        assert_eq!((t2, second), (t, "b"), "queued tie pops before re-arm");
        let (t3, third) = q.pop().unwrap();
        assert_eq!((t3, third), (t, "rearmed"));
    }

    /// `advance_to` across a long empty stretch, then scheduling near the
    /// new clock: lazily mis-leveled coarse buckets must still surface
    /// their minima correctly.
    #[test]
    fn advance_past_empty_slots_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(100), "far");
        q.advance_to(SimTime::from_secs(99));
        q.schedule_at(SimTime::from_secs(99) + Duration::from_nanos(1), "near");
        assert_eq!(
            q.peek_time(),
            Some(SimTime::from_secs(99) + Duration::from_nanos(1))
        );
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["near", "far"]);
    }

    /// Slab cells are reused: a long schedule/pop churn at a held
    /// population must not grow the slab beyond the peak population.
    #[test]
    fn slab_reuses_freed_cells() {
        let mut q = EventQueue::new();
        let mut state = 0xD1CEu64;
        let mut rng = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        for i in 0..64u64 {
            q.schedule_in(Duration::from_nanos(rng() % 1_000_000), i);
        }
        for i in 0..100_000u64 {
            let (_, _) = q.pop().expect("population held at 64");
            q.schedule_in(Duration::from_nanos(rng() % 1_000_000), i);
        }
        assert_eq!(q.len(), 64);
        // 100k events flowed through; the slab stayed at the held
        // population (cells reused through the free list).
        assert!(
            q.slab.len() <= 64,
            "slab grew to {} cells for a held population of 64",
            q.slab.len()
        );
    }

    /// A randomized hold-model churn must agree with both reference
    /// engines exactly — the in-crate smoke version of the differential
    /// oracle in `tests/queue_equiv.rs`.
    #[test]
    fn wheel_agrees_with_references_under_churn() {
        let mut wheel = EventQueue::new();
        let mut inline = InlineWheel::new();
        let mut oracle = RefQueue::new();
        // Deterministic splitmix64 stream.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut rng = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in 0..50_000u64 {
            let r = rng();
            if r % 3 == 0 && !wheel.is_empty() {
                let a = wheel.pop();
                let b = oracle.pop();
                let c = inline.pop();
                assert_eq!(a, b, "slab wheel diverged from heap at op {i}");
                assert_eq!(a, c, "slab wheel diverged from inline wheel at op {i}");
            } else {
                // Delays spanning ten orders of magnitude, with a bias
                // toward ties (delay 0).
                let shift = (r >> 8) % 34;
                let delay = Duration::from_nanos(if r % 5 == 0 { 0 } else { r % (1 << shift) });
                wheel.schedule_in(delay, i);
                oracle.schedule_in(delay, i);
                inline.schedule_in(delay, i);
            }
            assert_eq!(wheel.len(), oracle.len());
            assert_eq!(wheel.peek_time(), oracle.peek_time());
            assert_eq!(wheel.now(), oracle.now());
        }
        while let Some(a) = wheel.pop() {
            assert_eq!(Some(a), oracle.pop());
            assert_eq!(a, inline.pop().expect("inline wheel in lockstep"));
        }
        assert!(oracle.is_empty());
        assert!(inline.is_empty());
    }

    mod reference_contract {
        //! The oracles themselves honor the documented contract.
        use super::*;

        #[test]
        fn pops_in_time_order_with_fifo_ties() {
            let mut q = RefQueue::new();
            let t = SimTime::from_millis(5);
            q.schedule_at(SimTime::from_millis(9), 99);
            for i in 0..4 {
                q.schedule_at(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![0, 1, 2, 3, 99]);
        }

        #[test]
        fn inline_wheel_pops_in_time_order_with_fifo_ties() {
            let mut q = InlineWheel::new();
            let t = SimTime::from_millis(5);
            q.schedule_at(SimTime::from_millis(9), 99);
            for i in 0..4 {
                q.schedule_at(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![0, 1, 2, 3, 99]);
        }

        #[test]
        #[should_panic(expected = "into the past")]
        fn scheduling_into_past_panics() {
            let mut q = RefQueue::new();
            q.schedule_at(SimTime::from_millis(10), ());
            q.pop();
            q.schedule_at(SimTime::from_millis(5), ());
        }

        #[test]
        #[should_panic(expected = "pending event")]
        fn advance_past_pending_event_panics() {
            let mut q = RefQueue::new();
            q.schedule_at(SimTime::from_millis(10), ());
            q.advance_to(SimTime::from_millis(20));
        }
    }
}
