//! A deterministic event queue keyed by [`SimTime`].
//!
//! Events scheduled for the same instant are delivered in insertion order
//! (FIFO), which keeps simulations reproducible regardless of payload type.

use std::collections::BinaryHeap;
use std::time::Duration;

use crate::time::SimTime;

/// A pending entry in the [`EventQueue`].
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // breaking ties by insertion sequence for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of simulation events ordered by virtual time.
///
/// The queue also tracks the current virtual clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Scheduling into the past is
/// a programming error and panics, because it would silently reorder the
/// simulation.
///
/// # Examples
///
/// ```
/// use c4h_simnet::{EventQueue, SimTime};
/// use std::time::Duration;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(Duration::from_millis(5), "second");
/// q.schedule_at(SimTime::from_millis(1), "first");
///
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(1), "first"));
/// assert_eq!(q.now(), SimTime::from_millis(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Schedules `payload` after a relative `delay` from the current time.
    pub fn schedule_in(&mut self, delay: Duration, payload: E) {
        let at = self.now + delay;
        self.schedule_at(at, payload);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        Some((s.at, s.payload))
    }

    /// Advances the clock to `at` without delivering events.
    ///
    /// Useful when an external model (e.g. the flow network) decides the next
    /// interesting instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time, or if an event is
    /// pending before `at` (advancing past it would drop causality).
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot rewind the clock");
        if let Some(t) = self.peek_time() {
            assert!(t >= at, "cannot advance past a pending event at {t}");
        }
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), 3);
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(Duration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    #[should_panic(expected = "pending event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.advance_to(SimTime::from_millis(20));
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(1));
        assert_eq!(q.now(), SimTime::from_secs(1));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
