//! A deterministic event queue keyed by [`SimTime`].
//!
//! Events scheduled for the same instant are delivered in insertion order
//! (FIFO), which keeps simulations reproducible regardless of payload type.
//!
//! # Engine
//!
//! [`EventQueue`] is a hierarchical timer wheel: 11 levels of 64 slots,
//! each level bucketing events by one 6-bit group of their nanosecond
//! timestamp (level 0 = 1 ns slots, level 1 = 64 ns, … level 10 ≈ 36.6
//! virtual years per slot). 11 × 6 = 66 bits cover the entire `u64`
//! timestamp domain, so arbitrarily far-future events — including
//! [`SimTime::MAX`] sentinels — park in the top levels with no separate
//! overflow structure. Scheduling is O(1); popping finds the earliest
//! occupied slot through per-level occupancy bitmaps and cascades coarse
//! buckets downward as the clock reaches them, so each event is touched at
//! most once per level over its lifetime. Same-instant events share one
//! level-0 bucket and are delivered in `seq` (insertion) order, preserving
//! the `(at, seq)` total order the simulation's byte-determinism contract
//! is built on.
//!
//! The previous `BinaryHeap` scheduler survives as
//! [`reference::RefQueue`]: a deliberately simple oracle that the
//! differential property tests (`tests/queue_equiv.rs`) and the
//! `engine_throughput` bench drive in lockstep with the wheel.

use std::collections::VecDeque;
use std::mem;
use std::time::Duration;

use crate::time::SimTime;

/// Bits of the timestamp consumed per wheel level.
const SLOT_BITS: usize = 6;
/// Slots per level (`2^SLOT_BITS`).
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed to cover all 64 timestamp bits (`ceil(64 / 6)`).
const LEVELS: usize = 11;

/// A pending entry: the scheduled instant (nanoseconds), the insertion
/// sequence number breaking same-instant ties, and the payload.
#[derive(Debug)]
struct Entry<E> {
    at: u64,
    seq: u64,
    payload: E,
}

/// One wheel slot: its pending entries plus a cached minimum timestamp,
/// maintained on push and reset on drain, so finding the earliest event
/// never rescans bucket contents.
#[derive(Debug)]
struct Bucket<E> {
    entries: Vec<Entry<E>>,
    min_at: u64,
}

impl<E> Bucket<E> {
    fn new() -> Self {
        Bucket {
            entries: Vec::new(),
            min_at: u64::MAX,
        }
    }
}

/// A min-priority queue of simulation events ordered by virtual time.
///
/// The queue also tracks the current virtual clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Scheduling into the past is
/// a programming error and panics, because it would silently reorder the
/// simulation.
///
/// # Examples
///
/// ```
/// use c4h_simnet::{EventQueue, SimTime};
/// use std::time::Duration;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(Duration::from_millis(5), "second");
/// q.schedule_at(SimTime::from_millis(1), "first");
///
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(1), "first"));
/// assert_eq!(q.now(), SimTime::from_millis(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `LEVELS × SLOTS` buckets, flattened level-major.
    buckets: Vec<Bucket<E>>,
    /// One occupancy bit per slot, per level: bit `s` of `occupied[l]` is
    /// set iff `buckets[l * SLOTS + s]` is non-empty.
    occupied: [u64; LEVELS],
    /// Entries at exactly `now`, drained from their level-0 bucket and
    /// sorted by `seq`; popped from the front. This is the hot path: a
    /// burst of same-instant events costs one bucket drain, then pure
    /// `VecDeque` pops.
    ready: VecDeque<Entry<E>>,
    now: u64,
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The wheel coordinates of timestamp `at` relative to clock `now`:
/// the level of the highest 6-bit group where they differ (0 when equal),
/// and `at`'s slot index within that level.
fn level_slot(now: u64, at: u64) -> (usize, usize) {
    let xor = at ^ now;
    let level = if xor == 0 {
        0
    } else {
        (63 - xor.leading_zeros() as usize) / SLOT_BITS
    };
    let slot = ((at >> (level * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
    (level, slot)
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..LEVELS * SLOTS).map(|_| Bucket::new()).collect(),
            occupied: [0; LEVELS],
            ready: VecDeque::new(),
            now: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at.as_nanos() >= self.now,
            "cannot schedule into the past: at={at} now={}",
            SimTime::from_nanos(self.now)
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Entry {
            at: at.as_nanos(),
            seq,
            payload,
        });
        self.len += 1;
    }

    /// Schedules `payload` after a relative `delay` from the current time.
    pub fn schedule_in(&mut self, delay: Duration, payload: E) {
        let at = SimTime::from_nanos(self.now) + delay;
        self.schedule_at(at, payload);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.ready.is_empty() {
            return Some(SimTime::from_nanos(self.now));
        }
        self.earliest_bucket()
            .map(|(_, _, at)| SimTime::from_nanos(at))
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if let Some(e) = self.ready.pop_front() {
                debug_assert_eq!(e.at, self.now, "ready entries live at the clock instant");
                self.len -= 1;
                return Some((SimTime::from_nanos(e.at), e.payload));
            }
            let (level, slot, at) = self.earliest_bucket()?;
            debug_assert!(at >= self.now, "wheel surfaced an event from the past");
            // Advance the clock to the earliest pending instant, then move
            // that bucket: a level-0 bucket holds exactly the events at
            // `at` and drains into the ready run; a coarser bucket spans a
            // range of instants and cascades down a level (re-placement is
            // relative to the new clock, so entries at exactly `at` land
            // in the level-0 slot picked up on the next loop iteration).
            self.now = at;
            let idx = level * SLOTS + slot;
            self.occupied[level] &= !(1u64 << slot);
            let mut drained = mem::take(&mut self.buckets[idx].entries);
            self.buckets[idx].min_at = u64::MAX;
            if level == 0 {
                debug_assert!(drained.iter().all(|e| e.at == at));
                drained.sort_unstable_by_key(|e| e.seq);
                self.ready.extend(drained.drain(..));
            } else {
                for e in drained.drain(..) {
                    self.insert(e);
                }
            }
            // Hand the emptied allocation back to its bucket so steady-state
            // churn re-uses capacity instead of re-allocating.
            self.buckets[idx].entries = drained;
        }
    }

    /// Advances the clock to `at` without delivering events.
    ///
    /// Useful when an external model (e.g. the flow network) decides the next
    /// interesting instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time, or if an event is
    /// pending before `at` (advancing past it would drop causality).
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at.as_nanos() >= self.now, "cannot rewind the clock");
        if let Some(t) = self.peek_time() {
            assert!(t >= at, "cannot advance past a pending event at {t}");
        }
        // Pending entries keep valid wheel coordinates across the jump:
        // every entry's timestamp is ≥ `at`, and an interval sharing a
        // binary prefix at its endpoints shares it throughout, so each
        // entry's stored level can only be coarser than (never below) its
        // ideal level relative to the new clock. `earliest_bucket` reads
        // coarse slots through their cached minima and `pop` cascades them
        // lazily, so no eager re-filing is needed.
        self.now = at.as_nanos();
    }

    /// Files an entry into the wheel relative to the current clock.
    fn insert(&mut self, e: Entry<E>) {
        let (level, slot) = level_slot(self.now, e.at);
        let b = &mut self.buckets[level * SLOTS + slot];
        b.min_at = b.min_at.min(e.at);
        b.entries.push(e);
        self.occupied[level] |= 1u64 << slot;
    }

    /// The bucket holding the earliest pending event:
    /// `(level, slot, min_at)`.
    ///
    /// Per level, only slots at or after the clock's own slot can be
    /// occupied (entries are never in the past), and their time windows
    /// ascend with the slot index, so the first occupied slot holds the
    /// level's minimum; the cached `min_at` makes the cross-level compare
    /// exact even for coarse buckets. Ties prefer the highest level so
    /// `pop` cascades stale coarse buckets before draining the level-0
    /// bucket of the same instant — all same-instant events must share one
    /// ready run for `seq` ordering to be global.
    fn earliest_bucket(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for level in 0..LEVELS {
            let cursor = (self.now >> (level * SLOT_BITS)) & (SLOTS as u64 - 1);
            let mask = self.occupied[level] & (!0u64 << cursor);
            if mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                let at = self.buckets[level * SLOTS + slot].min_at;
                if best.is_none_or(|(_, _, b)| at <= b) {
                    best = Some((level, slot, at));
                }
            }
        }
        best
    }
}

pub mod reference {
    //! The reference scheduler: the pre-wheel `BinaryHeap` implementation,
    //! kept verbatim as the differential-testing oracle and benchmark
    //! baseline. Production code uses [`EventQueue`](super::EventQueue);
    //! this type exists so tests can prove the two agree on every
    //! schedule/pop/advance sequence and benches can measure the speedup.

    use std::collections::BinaryHeap;
    use std::time::Duration;

    use crate::time::SimTime;

    /// A pending entry in the [`RefQueue`].
    #[derive(Debug)]
    struct Scheduled<E> {
        at: SimTime,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }

    impl<E> Eq for Scheduled<E> {}

    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert so the earliest event pops
            // first, breaking ties by insertion sequence for determinism.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// The `BinaryHeap`-backed reference implementation of the event-queue
    /// contract: identical API and `(at, seq)` delivery order to
    /// [`EventQueue`](super::EventQueue), O(log n) operations. Test and
    /// bench use only.
    #[derive(Debug)]
    pub struct RefQueue<E> {
        heap: BinaryHeap<Scheduled<E>>,
        now: SimTime,
        next_seq: u64,
    }

    impl<E> Default for RefQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> RefQueue<E> {
        /// Creates an empty queue with the clock at [`SimTime::ZERO`].
        pub fn new() -> Self {
            RefQueue {
                heap: BinaryHeap::new(),
                now: SimTime::ZERO,
                next_seq: 0,
            }
        }

        /// The current virtual time (the timestamp of the last popped
        /// event).
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// Returns `true` if no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Schedules `payload` at the absolute instant `at`.
        ///
        /// # Panics
        ///
        /// Panics if `at` is earlier than the current virtual time.
        pub fn schedule_at(&mut self, at: SimTime, payload: E) {
            assert!(
                at >= self.now,
                "cannot schedule into the past: at={at} now={}",
                self.now
            );
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Scheduled { at, seq, payload });
        }

        /// Schedules `payload` after a relative `delay` from the current
        /// time.
        pub fn schedule_in(&mut self, delay: Duration, payload: E) {
            let at = self.now + delay;
            self.schedule_at(at, payload);
        }

        /// Timestamp of the next pending event, if any.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|s| s.at)
        }

        /// Pops the earliest event, advancing the clock to its timestamp.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let s = self.heap.pop()?;
            debug_assert!(s.at >= self.now);
            self.now = s.at;
            Some((s.at, s.payload))
        }

        /// Advances the clock to `at` without delivering events.
        ///
        /// # Panics
        ///
        /// Panics if `at` is earlier than the current time, or if an event
        /// is pending before `at`.
        pub fn advance_to(&mut self, at: SimTime) {
            assert!(at >= self.now, "cannot rewind the clock");
            if let Some(t) = self.peek_time() {
                assert!(t >= at, "cannot advance past a pending event at {t}");
            }
            self.now = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::RefQueue;
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), 3);
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(Duration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    #[should_panic(expected = "pending event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.advance_to(SimTime::from_millis(20));
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(1));
        assert_eq!(q.now(), SimTime::from_secs(1));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    /// Same instant scheduled from different clock positions: the entries
    /// start in different wheel levels but must merge into one seq-ordered
    /// delivery run.
    #[test]
    fn same_instant_entries_merge_across_levels() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(10);
        q.schedule_at(t, 0); // filed at a coarse level relative to now = 0
        q.schedule_at(SimTime::from_millis(9_999), -1);
        q.pop(); // now = 9.999 s: t is one millisecond out
        q.schedule_at(t, 1); // filed at a fine level relative to the new now
        q.schedule_at(t, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2], "seq order must survive cascades");
    }

    /// Far-future events (including the `SimTime::MAX` sentinel) park in
    /// the top wheel levels and still pop in order.
    #[test]
    fn far_future_events_pop_in_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::MAX, 3);
        q.schedule_at(SimTime::from_secs(3_600 * 24 * 365), 2); // one year
        q.schedule_at(SimTime::from_millis(1), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.now(), SimTime::MAX);
    }

    /// Zero-delay re-arming from inside the pop loop: each rescheduled
    /// event lands at the same instant with a later seq, after events
    /// already queued there.
    #[test]
    fn zero_delay_rearm_delivers_after_queued_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(2);
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "a");
        q.schedule_in(Duration::ZERO, "rearmed"); // at == now == t
        let (t2, second) = q.pop().unwrap();
        assert_eq!((t2, second), (t, "b"), "queued tie pops before re-arm");
        let (t3, third) = q.pop().unwrap();
        assert_eq!((t3, third), (t, "rearmed"));
    }

    /// `advance_to` across a long empty stretch, then scheduling near the
    /// new clock: lazily mis-leveled coarse buckets must still surface
    /// their minima correctly.
    #[test]
    fn advance_past_empty_slots_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(100), "far");
        q.advance_to(SimTime::from_secs(99));
        q.schedule_at(SimTime::from_secs(99) + Duration::from_nanos(1), "near");
        assert_eq!(
            q.peek_time(),
            Some(SimTime::from_secs(99) + Duration::from_nanos(1))
        );
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["near", "far"]);
    }

    /// A randomized hold-model churn must agree with the reference heap
    /// exactly — the in-crate smoke version of the differential oracle in
    /// `tests/queue_equiv.rs`.
    #[test]
    fn wheel_agrees_with_reference_under_churn() {
        let mut wheel = EventQueue::new();
        let mut oracle = RefQueue::new();
        // Deterministic splitmix64 stream.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut rng = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in 0..50_000u64 {
            let r = rng();
            if r % 3 == 0 && !wheel.is_empty() {
                let a = wheel.pop();
                let b = oracle.pop();
                assert_eq!(a, b, "divergence at op {i}");
            } else {
                // Delays spanning ten orders of magnitude, with a bias
                // toward ties (delay 0).
                let shift = (r >> 8) % 34;
                let delay = Duration::from_nanos(if r % 5 == 0 { 0 } else { r % (1 << shift) });
                wheel.schedule_in(delay, i);
                oracle.schedule_in(delay, i);
            }
            assert_eq!(wheel.len(), oracle.len());
            assert_eq!(wheel.peek_time(), oracle.peek_time());
            assert_eq!(wheel.now(), oracle.now());
        }
        while let Some(a) = wheel.pop() {
            assert_eq!(Some(a), oracle.pop());
        }
        assert!(oracle.is_empty());
    }

    mod reference_contract {
        //! The oracle itself honors the documented contract.
        use super::*;

        #[test]
        fn pops_in_time_order_with_fifo_ties() {
            let mut q = RefQueue::new();
            let t = SimTime::from_millis(5);
            q.schedule_at(SimTime::from_millis(9), 99);
            for i in 0..4 {
                q.schedule_at(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![0, 1, 2, 3, 99]);
        }

        #[test]
        #[should_panic(expected = "into the past")]
        fn scheduling_into_past_panics() {
            let mut q = RefQueue::new();
            q.schedule_at(SimTime::from_millis(10), ());
            q.pop();
            q.schedule_at(SimTime::from_millis(5), ());
        }

        #[test]
        #[should_panic(expected = "pending event")]
        fn advance_past_pending_event_panics() {
            let mut q = RefQueue::new();
            q.schedule_at(SimTime::from_millis(10), ());
            q.advance_to(SimTime::from_millis(20));
        }
    }
}
