//! Network topology: sites, shared segments, routes, and latency models.
//!
//! The Cloud4Home testbed has two *sites* — the home and the public cloud —
//! joined by asymmetric wireless uplink/downlink segments. Nodes attach to a
//! site; a [`Route`] between two sites names the ordered shared segments a
//! bulk transfer traverses, the control-message latency model, the TCP
//! profile bulk flows use, and the bandwidth-variability of the path.

use crate::hash::FxHashMap;
use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::tcp::TcpProfile;

/// The address of an endpoint attached to the network.
///
/// Addresses are opaque 64-bit identifiers; the Cloud4Home runtime assigns
/// one per node (home devices, cloud gateway, cloud storage/compute
/// endpoints).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw identifier.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw identifier.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr:{}", self.0)
    }
}

/// Identifier of a shared bandwidth segment within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SegmentId(pub(crate) usize);

/// Identifier of a site within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SiteId(pub(crate) usize);

/// A shared bandwidth resource (an Ethernet LAN, a wireless uplink, …).
///
/// Concurrent flows crossing the same segment share its capacity max-min
/// fairly; this is what produces the contention effects of the paper's
/// Figure 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Segment {
    name: String,
    capacity_bps: f64,
}

impl Segment {
    /// The segment's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes/second.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }
}

/// Latency model for control messages on a route: a base propagation delay
/// perturbed by a multiplicative jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Median one-way delay.
    pub base: Duration,
    /// Multiplicative jitter spread (e.g. `0.2` → ±20 %).
    pub jitter: f64,
}

impl LatencyModel {
    /// Samples a one-way delay.
    pub fn sample(&self, rng: &mut DetRng) -> Duration {
        self.base.mul_f64(rng.jitter_factor(self.jitter))
    }
}

/// A directed route between two sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Route {
    /// Shared segments traversed, in order.
    pub segments: Vec<SegmentId>,
    /// One-way control message latency.
    pub latency: LatencyModel,
    /// TCP behaviour of bulk flows on this route.
    pub tcp: TcpProfile,
    /// Log-scale sigma of the per-flow bandwidth availability factor
    /// (0 = stable link). The factor multiplies the flow's TCP rate caps.
    pub bandwidth_sigma: f64,
    /// Median of the per-flow bandwidth availability factor.
    pub bandwidth_median: f64,
}

impl Route {
    /// Samples the bandwidth availability factor for a new flow.
    ///
    /// The factor is clamped to `[0.05, 1.0]`: a flow can never exceed the
    /// nominal TCP caps, and never fully starves.
    pub fn sample_bandwidth_factor(&self, rng: &mut DetRng) -> f64 {
        if self.bandwidth_sigma <= 0.0 {
            return self.bandwidth_median.clamp(0.05, 1.0);
        }
        rng.heavy_tail(self.bandwidth_median, self.bandwidth_sigma)
            .clamp(0.05, 1.0)
    }
}

/// The complete static description of the simulated network.
///
/// Built once per experiment via [`TopologyBuilder`]; the
/// [`FlowNet`](crate::flow::FlowNet) consumes it to simulate bulk transfers,
/// and the runtime uses it to sample control-message latencies.
///
/// # Examples
///
/// ```
/// use c4h_simnet::{Topology, Addr, LatencyModel, TcpProfile};
/// use std::time::Duration;
///
/// let mut b = Topology::builder();
/// let lan = b.segment("lan", 10_000_000.0);
/// let home = b.site("home");
/// b.route(
///     home,
///     home,
///     vec![lan],
///     LatencyModel { base: Duration::from_micros(300), jitter: 0.1 },
///     TcpProfile::constant_rate(8_000_000.0),
///     1.0,
///     0.0,
/// );
/// let mut topo = b.build();
/// topo.attach(Addr::new(1), home);
/// topo.attach(Addr::new(2), home);
/// assert!(topo.route_between(Addr::new(1), Addr::new(2)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    segments: Vec<Segment>,
    site_names: Vec<String>,
    routes: FxHashMap<(SiteId, SiteId), Route>,
    attachments: FxHashMap<Addr, SiteId>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Attaches an endpoint address to a site.
    ///
    /// # Panics
    ///
    /// Panics if the site does not exist in this topology.
    pub fn attach(&mut self, addr: Addr, site: SiteId) {
        assert!(site.0 < self.site_names.len(), "unknown site {site:?}");
        self.attachments.insert(addr, site);
    }

    /// The site an address is attached to, if any.
    pub fn site_of(&self, addr: Addr) -> Option<SiteId> {
        self.attachments.get(&addr).copied()
    }

    /// The segment table.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Looks up a segment.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.0]
    }

    /// The route between the sites of two attached addresses.
    ///
    /// Returns `None` if either address is unattached or no route exists
    /// between their sites. Endpoints on the same node (identical address)
    /// have no route; such transfers are local and handled by the VM-channel
    /// model instead.
    pub fn route_between(&self, src: Addr, dst: Addr) -> Option<&Route> {
        let s = self.site_of(src)?;
        let d = self.site_of(dst)?;
        self.routes.get(&(s, d))
    }

    /// The route between two sites.
    pub fn route(&self, src: SiteId, dst: SiteId) -> Option<&Route> {
        self.routes.get(&(src, dst))
    }

    /// Mutable access to a route, for modeling changing network conditions
    /// (e.g. degrading the wireless uplink mid-experiment). Flows already in
    /// flight keep their sampled parameters; new flows and analytic
    /// estimates see the updated route.
    pub fn route_mut(&mut self, src: SiteId, dst: SiteId) -> Option<&mut Route> {
        self.routes.get_mut(&(src, dst))
    }

    /// All declared (src, dst) site pairs with routes.
    pub fn route_pairs(&self) -> Vec<(SiteId, SiteId)> {
        self.routes.keys().copied().collect()
    }

    /// Samples a one-way control-message latency between two addresses.
    ///
    /// Returns `None` when no route exists (e.g. unattached endpoint).
    pub fn message_latency(&self, src: Addr, dst: Addr, rng: &mut DetRng) -> Option<Duration> {
        if src == dst {
            // Same node: loopback, negligible but non-zero.
            return Some(Duration::from_micros(20));
        }
        self.route_between(src, dst).map(|r| r.latency.sample(rng))
    }

    /// The physical bottleneck capacity (bytes/second) along the route
    /// between two addresses, ignoring contention — used for analytic
    /// estimates.
    pub fn bottleneck_bps(&self, src: Addr, dst: Addr) -> Option<f64> {
        let route = self.route_between(src, dst)?;
        route
            .segments
            .iter()
            .map(|&s| self.segments[s.0].capacity_bps)
            .fold(None, |acc: Option<f64>, c| {
                Some(acc.map_or(c, |a| a.min(c)))
            })
            .or(Some(f64::INFINITY))
    }
}

/// Incremental builder for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    segments: Vec<Segment>,
    site_names: Vec<String>,
    routes: FxHashMap<(SiteId, SiteId), Route>,
}

impl TopologyBuilder {
    /// Declares a shared bandwidth segment and returns its id.
    pub fn segment(&mut self, name: &str, capacity_bps: f64) -> SegmentId {
        assert!(capacity_bps > 0.0, "segment capacity must be positive");
        self.segments.push(Segment {
            name: name.to_owned(),
            capacity_bps,
        });
        SegmentId(self.segments.len() - 1)
    }

    /// Declares a site and returns its id.
    pub fn site(&mut self, name: &str) -> SiteId {
        self.site_names.push(name.to_owned());
        SiteId(self.site_names.len() - 1)
    }

    /// Declares the directed route `src → dst`.
    ///
    /// `bandwidth_median`/`bandwidth_sigma` parameterize per-flow bandwidth
    /// availability (see [`Route::sample_bandwidth_factor`]).
    #[allow(clippy::too_many_arguments)]
    pub fn route(
        &mut self,
        src: SiteId,
        dst: SiteId,
        segments: Vec<SegmentId>,
        latency: LatencyModel,
        tcp: TcpProfile,
        bandwidth_median: f64,
        bandwidth_sigma: f64,
    ) -> &mut Self {
        for s in &segments {
            assert!(s.0 < self.segments.len(), "unknown segment {s:?}");
        }
        self.routes.insert(
            (src, dst),
            Route {
                segments,
                latency,
                tcp,
                bandwidth_sigma,
                bandwidth_median,
            },
        );
        self
    }

    /// Finalizes the topology. Endpoints are attached afterwards with
    /// [`Topology::attach`].
    pub fn build(self) -> Topology {
        Topology {
            segments: self.segments,
            site_names: self.site_names,
            routes: self.routes,
            attachments: FxHashMap::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_site_topology() -> (Topology, SiteId, SiteId) {
        let mut b = Topology::builder();
        let lan = b.segment("lan", 1000.0);
        let up = b.segment("up", 100.0);
        let home = b.site("home");
        let cloud = b.site("cloud");
        let lat = LatencyModel {
            base: Duration::from_millis(1),
            jitter: 0.0,
        };
        b.route(
            home,
            home,
            vec![lan],
            lat,
            TcpProfile::constant_rate(900.0),
            1.0,
            0.0,
        );
        b.route(
            home,
            cloud,
            vec![lan, up],
            lat,
            TcpProfile::constant_rate(90.0),
            1.0,
            0.0,
        );
        (b.build(), home, cloud)
    }

    #[test]
    fn routes_resolve_between_attached_addrs() {
        let (mut t, home, cloud) = two_site_topology();
        t.attach(Addr::new(1), home);
        t.attach(Addr::new(2), cloud);
        assert!(t.route_between(Addr::new(1), Addr::new(2)).is_some());
        // No reverse route was declared.
        assert!(t.route_between(Addr::new(2), Addr::new(1)).is_none());
        // Unattached address has no route.
        assert!(t.route_between(Addr::new(1), Addr::new(9)).is_none());
    }

    #[test]
    fn bottleneck_is_min_segment_capacity() {
        let (mut t, home, cloud) = two_site_topology();
        t.attach(Addr::new(1), home);
        t.attach(Addr::new(2), cloud);
        assert_eq!(t.bottleneck_bps(Addr::new(1), Addr::new(2)), Some(100.0));
    }

    #[test]
    fn loopback_latency_is_tiny() {
        let (mut t, home, _) = two_site_topology();
        t.attach(Addr::new(1), home);
        let mut rng = DetRng::seed(0);
        let d = t
            .message_latency(Addr::new(1), Addr::new(1), &mut rng)
            .unwrap();
        assert!(d < Duration::from_millis(1));
    }

    #[test]
    fn latency_jitter_spreads_samples() {
        let m = LatencyModel {
            base: Duration::from_millis(10),
            jitter: 0.5,
        };
        let mut rng = DetRng::seed(9);
        let samples: Vec<Duration> = (0..100).map(|_| m.sample(&mut rng)).collect();
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        assert!(*min >= Duration::from_millis(5));
        assert!(*max <= Duration::from_millis(15) + Duration::from_micros(1));
        assert!(max > min);
    }

    #[test]
    fn stable_route_factor_is_median() {
        let (t, _, _) = {
            let (t, h, c) = two_site_topology();
            (t, h, c)
        };
        let route = t.route(SiteId(0), SiteId(0)).unwrap();
        let mut rng = DetRng::seed(1);
        assert_eq!(route.sample_bandwidth_factor(&mut rng), 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn attaching_to_unknown_site_panics() {
        let (mut t, _, _) = two_site_topology();
        t.attach(Addr::new(1), SiteId(99));
    }

    #[test]
    #[should_panic(expected = "unknown segment")]
    fn route_with_unknown_segment_panics() {
        let mut b = Topology::builder();
        let home = b.site("home");
        b.route(
            home,
            home,
            vec![SegmentId(5)],
            LatencyModel {
                base: Duration::ZERO,
                jitter: 0.0,
            },
            TcpProfile::constant_rate(1.0),
            1.0,
            0.0,
        );
    }
}
