//! Deterministic discrete-event network substrate for the Cloud4Home
//! reproduction.
//!
//! The ICDCS'11 Cloud4Home paper evaluates its VStore++ prototype on a
//! physical testbed: Atom netbooks and a desktop on a 95.5 Mbps home LAN,
//! reaching Amazon EC2/S3 over a variable campus wireless network. This
//! crate replaces that physical substrate with a deterministic simulation
//! that preserves the properties the experiments depend on:
//!
//! * **Virtual time** ([`SimTime`], [`EventQueue`]) — every latency and
//!   transfer advances a virtual clock, so runs are exactly reproducible
//!   under a seed.
//! * **Fluid-flow bandwidth sharing** ([`FlowNet`]) — bulk transfers are
//!   flows over shared segments with max-min fair allocation, reproducing
//!   contention between concurrent accesses (paper Figure 6).
//! * **Phase-based TCP model** ([`TcpProfile`]) — per-flow rate caps that
//!   ramp up (window growth) and degrade after a sustained-byte threshold
//!   (ISP traffic shaping / receiver page-cache exhaustion), reproducing the
//!   throughput-vs-object-size curve of Figure 5 and the cost scaling of
//!   Table I.
//! * **Topology description** ([`Topology`]) — sites, shared segments,
//!   routes with latency models and bandwidth variability.
//! * **Calibrated presets** ([`presets`]) — the paper testbed's numbers.
//! * **Fault primitives** ([`GilbertElliott`], [`Partition`]) — bursty
//!   per-route loss and reachability cuts for deterministic
//!   fault-injection experiments.
//!
//! # Examples
//!
//! Simulate one home-LAN object transfer on the paper's testbed:
//!
//! ```
//! use c4h_simnet::presets::paper_testbed;
//! use c4h_simnet::{Addr, DetRng, FlowNet, SimTime};
//!
//! let mut tb = paper_testbed();
//! tb.topology.attach(Addr::new(1), tb.home);
//! tb.topology.attach(Addr::new(2), tb.home);
//!
//! let mut net = FlowNet::new(tb.topology);
//! let mut rng = DetRng::seed(42);
//! net.start_flow(SimTime::ZERO, Addr::new(1), Addr::new(2), 1 << 20, &mut rng)?;
//! let mut done_at = SimTime::ZERO;
//! while let Some(t) = net.next_event() {
//!     if !net.advance(t).is_empty() {
//!         done_at = t;
//!     }
//! }
//! // A 1 MiB home transfer lands near Table I's ~103 ms.
//! assert!(done_at.as_millis_f64() > 50.0 && done_at.as_millis_f64() < 200.0);
//! # Ok::<(), c4h_simnet::NetError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fault;
mod flow;
pub mod hash;
pub mod intern;
pub mod presets;
pub mod queue;
mod rng;
mod tcp;
mod time;
mod topology;

pub use fault::{GilbertElliott, Partition};
pub use flow::{
    ChunkSpec, FlowCounters, FlowEvent, FlowId, FlowNet, FlowProgress, NetError, SegmentLoad,
    NET_TRACK_BASE,
};
pub use hash::{FxHashMap, FxHashSet};
pub use intern::{Interner, Sym, SymMap, SymSet};
pub use queue::{EventQueue, QueueStats, LEVELS as WHEEL_LEVELS};
pub use rng::DetRng;
pub use tcp::{mbps, mib, SustainedCap, TcpProfile};
pub use time::{duration_from_secs_f64, SimTime};
pub use topology::{
    Addr, LatencyModel, Route, Segment, SegmentId, SiteId, Topology, TopologyBuilder,
};
