//! Calibrated presets reproducing the paper's experimental testbed.
//!
//! The ICDCS'11 evaluation runs on a home LAN ("95.5 Mbps Ethernet") and
//! reaches Amazon EC2/S3 over the Georgia Tech wireless network ("maximum
//! wireless bandwidth close to 6.5 Mbps for download and 4.5 Mbps for
//! upload, with average around 1.5 Mbps"). The numbers below are calibrated
//! so that:
//!
//! * single-flow LAN goodput matches Table I's inter-node column
//!   (≈10.3 MB/s, degrading to ≈7 MB/s for very large objects once the
//!   receiver's page cache is exhausted);
//! * single-flow WAN throughput reproduces Figure 5's hump: slow window
//!   ramp-up penalizes small objects, ISP traffic shaping penalizes objects
//!   beyond ≈22 MB, and the optimum lands near 20 MB;
//! * the WAN exhibits the high per-flow variability behind Figure 4's
//!   error bars.

use std::time::Duration;

use crate::tcp::{mbps, mib, SustainedCap, TcpProfile};
use crate::topology::{LatencyModel, SiteId, Topology};

/// The assembled paper testbed: one home site and one public-cloud site.
#[derive(Debug, Clone)]
pub struct PaperTestbed {
    /// The topology with all segments and routes declared (no attachments).
    pub topology: Topology,
    /// The home site (Atom netbooks + desktop behind the Ethernet LAN).
    pub home: SiteId,
    /// The public cloud site (EC2 instances + S3 storage).
    pub cloud: SiteId,
}

/// Home-LAN capacity: 95.5 Mbps Ethernet.
pub fn home_lan_capacity_bps() -> f64 {
    mbps(95.5)
}

/// WAN download ceiling: 6.5 Mbps (shared by all concurrent flows).
pub fn wan_down_capacity_bps() -> f64 {
    mbps(6.5)
}

/// WAN upload ceiling: 4.5 Mbps (shared by all concurrent flows).
pub fn wan_up_capacity_bps() -> f64 {
    mbps(4.5)
}

/// TCP behaviour of home-LAN transfers.
///
/// Calibration (Table I, inter-node column): ≈4 ms of setup, a steady
/// ≈10.3 MB/s goodput, and a sustained cap of ≈5.6 MB/s after 50 MB modeling
/// receiver page-cache exhaustion (the 100 MB row's 7.4 MB/s average).
pub fn lan_tcp_profile() -> TcpProfile {
    TcpProfile {
        setup: Duration::from_millis(4),
        rate_floor_bps: 6.0e6,
        ramp_bps_per_sec: 40.0e6,
        ramp_step: Duration::from_millis(50),
        rate_cap_bps: 10.3e6,
        sustained: Some(SustainedCap {
            threshold_bytes: mib(50),
            rate_bps: 5.6e6,
        }),
    }
}

/// TCP behaviour of cloud-to-home (download) transfers.
///
/// Calibration (Figure 5): the per-flow rate ramps from ≈0.09 MB/s toward a
/// ≈0.21 MB/s cap (the provider's ≈1.6 MB window over a high wireless RTT)
/// over ≈45 s, and drops to ≈0.105 MB/s once ISP shaping engages after
/// ≈22 MB. The resulting average-throughput curve peaks near 20 MB objects.
pub fn wan_down_profile() -> TcpProfile {
    TcpProfile {
        setup: Duration::from_millis(600),
        rate_floor_bps: 0.09e6,
        ramp_bps_per_sec: 2.7e3,
        ramp_step: Duration::from_millis(500),
        rate_cap_bps: 0.215e6,
        sustained: Some(SustainedCap {
            threshold_bytes: mib(22),
            rate_bps: 0.105e6,
        }),
    }
}

/// TCP behaviour of home-to-cloud (upload) transfers.
///
/// The 4.5/6.5 upload/download asymmetry of the testbed wireless network is
/// applied across the download profile's parameters.
pub fn wan_up_profile() -> TcpProfile {
    let scale = 4.5 / 6.5;
    let down = wan_down_profile();
    TcpProfile {
        setup: Duration::from_millis(700),
        rate_floor_bps: down.rate_floor_bps * scale,
        ramp_bps_per_sec: down.ramp_bps_per_sec * scale,
        ramp_step: down.ramp_step,
        rate_cap_bps: down.rate_cap_bps * scale,
        sustained: down.sustained.map(|s| SustainedCap {
            threshold_bytes: s.threshold_bytes,
            rate_bps: s.rate_bps * scale,
        }),
    }
}

/// TCP behaviour inside the public cloud (EC2 ↔ S3).
pub fn cloud_lan_profile() -> TcpProfile {
    TcpProfile {
        setup: Duration::from_millis(2),
        rate_floor_bps: 60.0e6,
        ramp_bps_per_sec: 0.0,
        ramp_step: Duration::from_secs(1),
        rate_cap_bps: 60.0e6,
        sustained: None,
    }
}

/// One-way latency of home-LAN control messages.
pub fn lan_latency() -> LatencyModel {
    LatencyModel {
        base: Duration::from_micros(350),
        jitter: 0.25,
    }
}

/// One-way latency of home ↔ cloud control messages (wireless + Internet).
pub fn wan_latency() -> LatencyModel {
    LatencyModel {
        base: Duration::from_millis(48),
        jitter: 0.4,
    }
}

/// Median per-flow bandwidth availability on the WAN.
///
/// The testbed reports a 6.5 Mbps maximum against a ≈1.5 Mbps average; most
/// of the gap is the window/ramp behaviour above, with the remainder as
/// per-flow availability variance.
pub fn wan_bandwidth_median() -> f64 {
    0.92
}

/// Log-scale sigma of per-flow WAN bandwidth availability (Figure 4's
/// error bars).
pub fn wan_bandwidth_sigma() -> f64 {
    0.35
}

/// Builds the paper's two-site testbed topology.
///
/// Segments: the 95.5 Mbps home Ethernet, the asymmetric wireless
/// uplink/downlink to the Internet, and a fast cloud-internal network.
/// Callers attach node addresses to [`PaperTestbed::home`] and
/// [`PaperTestbed::cloud`] afterwards.
///
/// # Examples
///
/// ```
/// use c4h_simnet::presets::paper_testbed;
/// use c4h_simnet::Addr;
///
/// let mut tb = paper_testbed();
/// tb.topology.attach(Addr::new(1), tb.home);
/// tb.topology.attach(Addr::new(100), tb.cloud);
/// assert!(tb.topology.route_between(Addr::new(1), Addr::new(100)).is_some());
/// ```
pub fn paper_testbed() -> PaperTestbed {
    let mut b = Topology::builder();
    let lan = b.segment("home-ethernet", home_lan_capacity_bps());
    let wan_up = b.segment("wireless-uplink", wan_up_capacity_bps());
    let wan_down = b.segment("wireless-downlink", wan_down_capacity_bps());
    let cloud_lan = b.segment("cloud-internal", 120.0e6);
    let home = b.site("home");
    let cloud = b.site("cloud");

    b.route(
        home,
        home,
        vec![lan],
        lan_latency(),
        lan_tcp_profile(),
        0.98,
        0.05,
    );
    b.route(
        home,
        cloud,
        vec![lan, wan_up],
        wan_latency(),
        wan_up_profile(),
        wan_bandwidth_median(),
        wan_bandwidth_sigma(),
    );
    b.route(
        cloud,
        home,
        vec![wan_down, lan],
        wan_latency(),
        wan_down_profile(),
        wan_bandwidth_median(),
        wan_bandwidth_sigma(),
    );
    b.route(
        cloud,
        cloud,
        vec![cloud_lan],
        LatencyModel {
            base: Duration::from_micros(500),
            jitter: 0.2,
        },
        cloud_lan_profile(),
        1.0,
        0.0,
    );

    PaperTestbed {
        topology: b.build(),
        home,
        cloud,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::mib;

    #[test]
    fn lan_profile_matches_table1_inter_node_scale() {
        let p = lan_tcp_profile();
        let cap = home_lan_capacity_bps();
        // 1 MB row: ~103 ms in the paper.
        let t1 = p.transfer_time(mib(1), cap, 1.0).as_millis();
        assert!((80..150).contains(&t1), "1 MiB took {t1} ms");
        // 100 MB row: ~13.6 s in the paper.
        let t100 = p.transfer_time(mib(100), cap, 1.0).as_millis();
        assert!((11_000..17_000).contains(&t100), "100 MiB took {t100} ms");
    }

    #[test]
    fn wan_down_curve_peaks_near_20_mib() {
        let p = wan_down_profile();
        let cap = wan_down_capacity_bps();
        let tput = |m: u64| p.average_throughput(mib(m), cap, wan_bandwidth_median());
        let at_10 = tput(10);
        let at_20 = tput(20);
        let at_50 = tput(50);
        let at_100 = tput(100);
        assert!(
            at_20 > at_10,
            "20 MiB ({at_20}) should beat 10 MiB ({at_10})"
        );
        assert!(
            at_20 > at_50,
            "20 MiB ({at_20}) should beat 50 MiB ({at_50})"
        );
        assert!(
            at_50 > at_100,
            "50 MiB ({at_50}) should beat 100 MiB ({at_100})"
        );
    }

    #[test]
    fn wan_upload_is_slower_than_download() {
        let up = wan_up_profile();
        let down = wan_down_profile();
        let t_up = up.transfer_time(mib(5), wan_up_capacity_bps(), 1.0);
        let t_down = down.transfer_time(mib(5), wan_down_capacity_bps(), 1.0);
        assert!(t_up > t_down);
    }

    #[test]
    fn testbed_routes_are_complete() {
        let tb = paper_testbed();
        for (s, d) in [
            (tb.home, tb.home),
            (tb.home, tb.cloud),
            (tb.cloud, tb.home),
            (tb.cloud, tb.cloud),
        ] {
            assert!(
                tb.topology.route(s, d).is_some(),
                "missing route {s:?}->{d:?}"
            );
        }
    }

    #[test]
    fn wan_is_much_slower_and_more_variable_than_lan() {
        let lan = lan_tcp_profile();
        let wan = wan_down_profile();
        let t_lan = lan.transfer_time(mib(10), home_lan_capacity_bps(), 1.0);
        let t_wan = wan.transfer_time(mib(10), wan_down_capacity_bps(), 1.0);
        assert!(
            t_wan.as_secs_f64() > 20.0 * t_lan.as_secs_f64(),
            "WAN {t_wan:?} should dwarf LAN {t_lan:?}"
        );
        assert!(wan_bandwidth_sigma() > 0.0);
    }
}
