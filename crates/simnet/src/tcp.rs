//! Phase-based TCP transfer model.
//!
//! The paper's Figure 5 attributes the throughput-vs-object-size curve of
//! remote-cloud transfers to three transport-level effects:
//!
//! 1. short transfers spend most of their life in slow start / window
//!    ramp-up, so their average throughput is poor;
//! 2. providers such as S3 grow the TCP window during a transfer up to a cap
//!    (≈1.6 MB for S3), so longer transfers reach a higher steady rate;
//! 3. ISPs rate-limit long "bandwidth-hogging" transfers, so beyond some
//!    size average throughput degrades again.
//!
//! [`TcpProfile`] models this as a per-flow rate cap that (a) ramps up in
//! discrete steps of `ramp_step` while the flow is active, saturating at
//! `rate_cap_bps`, and (b) drops to a sustained rate once a byte threshold is
//! crossed ([`SustainedCap`]). The same sustained-cap mechanism models the
//! home-LAN effect visible in the paper's Table I, where large transfers
//! degrade to the receiver's disk-bound rate once the page cache is
//! exhausted.
//!
//! The model is deliberately fluid (rates, not packets): the experiments only
//! depend on *average* throughput as a function of transfer size and on fair
//! sharing between concurrent flows, which this reproduces at a tiny fraction
//! of the cost of packet-level simulation.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::time::duration_from_secs_f64;

/// Rate limitation applied after a flow has moved a threshold number of
/// bytes.
///
/// Models both ISP traffic shaping of long WAN transfers (paper §V-A) and
/// page-cache exhaustion on LAN receivers (Table I's sub-linear inter-node
/// costs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SustainedCap {
    /// Cumulative bytes after which the cap applies.
    pub threshold_bytes: u64,
    /// The rate (bytes/second) allowed once the threshold is crossed.
    pub rate_bps: f64,
}

/// Parameters of the phase-based TCP model for one link class.
///
/// A flow's instantaneous rate cap is:
///
/// ```text
/// cap(t, sent) = if sent >= sustained.threshold { sustained.rate }
///                else min(rate_cap, rate_floor + ramp_bps_per_sec * t)
/// ```
///
/// quantized into steps of `ramp_step` so the fluid network model only deals
/// with piecewise-constant rates. The `setup` duration models connection
/// establishment plus request round trips and is charged before any byte
/// moves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcpProfile {
    /// Connection setup + request overhead charged before the first byte.
    pub setup: Duration,
    /// Rate cap at flow start (bytes/second), before any ramp-up.
    pub rate_floor_bps: f64,
    /// Additive rate growth while the flow is active (bytes/second²).
    pub ramp_bps_per_sec: f64,
    /// Quantization step for the ramp; cap changes are events at this period.
    pub ramp_step: Duration,
    /// Maximum per-flow rate (bytes/second): the provider window cap divided
    /// by the RTT, or the NIC limit, whichever binds.
    pub rate_cap_bps: f64,
    /// Optional long-transfer degradation.
    pub sustained: Option<SustainedCap>,
}

impl TcpProfile {
    /// A profile with a constant rate cap and no setup cost, ramp, or
    /// sustained degradation. Useful in tests.
    pub fn constant_rate(rate_bps: f64) -> Self {
        TcpProfile {
            setup: Duration::ZERO,
            rate_floor_bps: rate_bps,
            ramp_bps_per_sec: 0.0,
            ramp_step: Duration::from_secs(1),
            rate_cap_bps: rate_bps,
            sustained: None,
        }
    }

    /// The rate cap (bytes/second) for a flow that has been active for
    /// `active` time and has already moved `sent` bytes, before any
    /// bandwidth-sharing or variability factors are applied.
    pub fn cap_at(&self, active: Duration, sent: u64) -> f64 {
        if let Some(s) = self.sustained {
            if sent >= s.threshold_bytes {
                return s.rate_bps;
            }
        }
        let steps = if self.ramp_step.is_zero() {
            0
        } else {
            (active.as_secs_f64() / self.ramp_step.as_secs_f64()).floor() as u64
        };
        let ramped = self.rate_floor_bps
            + self.ramp_bps_per_sec * self.ramp_step.as_secs_f64() * steps as f64;
        ramped.min(self.rate_cap_bps)
    }

    /// Number of `ramp_step` periods needed for the ramp to saturate at
    /// `rate_cap_bps`.
    pub fn steps_to_saturation(&self) -> u64 {
        if self.ramp_bps_per_sec <= 0.0 || self.rate_floor_bps >= self.rate_cap_bps {
            return 0;
        }
        let per_step = self.ramp_bps_per_sec * self.ramp_step.as_secs_f64();
        if per_step <= 0.0 {
            return 0;
        }
        ((self.rate_cap_bps - self.rate_floor_bps) / per_step).ceil() as u64
    }

    /// Analytic transfer time for a single uncontended flow of `bytes`,
    /// optionally limited by an external bottleneck rate (e.g. the physical
    /// segment capacity) and scaled by a per-flow bandwidth factor.
    ///
    /// This mirrors exactly what the fluid network computes for a lone flow
    /// and is used by the VStore++ decision engine to estimate data-movement
    /// costs, and by tests as an oracle.
    pub fn transfer_time(&self, bytes: u64, bottleneck_bps: f64, factor: f64) -> Duration {
        let mut remaining = bytes as f64;
        let mut sent = 0u64;
        let mut t = self.setup.as_secs_f64();
        let mut active = Duration::ZERO;
        let step = self.ramp_step.max(Duration::from_millis(1));
        // Walk the piecewise-constant cap schedule.
        let mut guard = 0u32;
        while remaining > 1e-6 {
            guard += 1;
            assert!(guard < 1_000_000, "transfer_time failed to converge");
            let cap = (self.cap_at(active, sent) * factor).min(bottleneck_bps);
            assert!(cap > 0.0, "transfer cap must be positive");
            // Until the next cap change: either a ramp step boundary or the
            // sustained threshold crossing.
            let mut window = f64::INFINITY;
            if self.ramp_bps_per_sec > 0.0 && self.cap_at(active, sent) < self.rate_cap_bps {
                window = step.as_secs_f64();
            }
            if let Some(s) = self.sustained {
                if sent < s.threshold_bytes {
                    let to_thresh = (s.threshold_bytes - sent) as f64 / cap;
                    window = window.min(to_thresh);
                }
            }
            let finish = remaining / cap;
            let dt = finish.min(window);
            let moved = cap * dt;
            remaining -= moved;
            sent += moved.round() as u64;
            t += dt;
            active += duration_from_secs_f64(dt);
        }
        duration_from_secs_f64(t)
    }

    /// Analytic transfer time for a *chunked* transfer: `bytes` split into
    /// pipelined chunks of `chunk_bytes` with up to `window` chunk flows in
    /// flight at once (see `FlowNet::start_transfer`).
    ///
    /// The approximation treats the chunk pipeline as one aggregate flow
    /// whose floor/ramp/cap scale with the effective parallelism, and whose
    /// sustained degradation only applies if a single chunk can cross the
    /// per-flow threshold. Used by the decision engine so placement costs
    /// reflect the chunked data path; the fluid engine remains the ground
    /// truth.
    pub fn chunked_transfer_time(
        &self,
        bytes: u64,
        chunk_bytes: u64,
        window: usize,
        bottleneck_bps: f64,
        factor: f64,
    ) -> Duration {
        if chunk_bytes == 0 || bytes <= chunk_bytes || window < 2 {
            return self.transfer_time(bytes, bottleneck_bps, factor);
        }
        let chunks = bytes.div_ceil(chunk_bytes);
        let par = (window as u64).min(chunks) as f64;
        let mut agg = self.clone();
        agg.rate_floor_bps *= par;
        agg.ramp_bps_per_sec *= par;
        agg.rate_cap_bps *= par;
        agg.sustained = self.sustained.and_then(|s| {
            if chunk_bytes < s.threshold_bytes {
                // No single chunk moves enough bytes to trip the per-flow
                // shaping threshold.
                None
            } else {
                Some(SustainedCap {
                    threshold_bytes: s.threshold_bytes.saturating_mul(par as u64),
                    rate_bps: s.rate_bps * par,
                })
            }
        });
        agg.transfer_time(bytes, bottleneck_bps, factor)
    }

    /// Average throughput (bytes/second) for a single uncontended transfer of
    /// `bytes`, including setup cost.
    pub fn average_throughput(&self, bytes: u64, bottleneck_bps: f64, factor: f64) -> f64 {
        let t = self
            .transfer_time(bytes, bottleneck_bps, factor)
            .as_secs_f64();
        if t <= 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 / t
        }
    }
}

/// Convenience: megabytes to bytes.
pub const fn mib(n: u64) -> u64 {
    n * 1024 * 1024
}

/// Convenience: megabits per second to bytes per second.
pub const fn mbps(n: f64) -> f64 {
    n * 1_000_000.0 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wan_like() -> TcpProfile {
        TcpProfile {
            setup: Duration::from_millis(300),
            rate_floor_bps: 40_000.0,
            ramp_bps_per_sec: 12_000.0,
            ramp_step: Duration::from_millis(500),
            rate_cap_bps: 200_000.0,
            sustained: Some(SustainedCap {
                threshold_bytes: mib(20),
                rate_bps: 100_000.0,
            }),
        }
    }

    #[test]
    fn constant_profile_is_linear() {
        let p = TcpProfile::constant_rate(1_000_000.0);
        let t = p.transfer_time(2_000_000, f64::INFINITY, 1.0);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn cap_ramps_and_saturates() {
        let p = wan_like();
        assert_eq!(p.cap_at(Duration::ZERO, 0), 40_000.0);
        let later = p.cap_at(Duration::from_secs(5), 0);
        assert!(later > 40_000.0);
        assert_eq!(p.cap_at(Duration::from_secs(3600), 0), 200_000.0);
    }

    #[test]
    fn sustained_cap_applies_after_threshold() {
        let p = wan_like();
        assert_eq!(p.cap_at(Duration::from_secs(3600), mib(20)), 100_000.0);
        assert_eq!(p.cap_at(Duration::from_secs(3600), mib(20) - 1), 200_000.0);
    }

    #[test]
    fn medium_transfers_beat_small_ones_in_throughput() {
        let p = wan_like();
        let small = p.average_throughput(mib(1), f64::INFINITY, 1.0);
        let medium = p.average_throughput(mib(15), f64::INFINITY, 1.0);
        assert!(
            medium > small * 1.5,
            "ramp-up should penalize small transfers: small={small} medium={medium}"
        );
    }

    #[test]
    fn shaping_penalizes_very_large_transfers() {
        let p = wan_like();
        let medium = p.average_throughput(mib(18), f64::INFINITY, 1.0);
        let huge = p.average_throughput(mib(100), f64::INFINITY, 1.0);
        assert!(
            huge < medium,
            "ISP shaping should bend the curve down: medium={medium} huge={huge}"
        );
    }

    #[test]
    fn bottleneck_limits_rate() {
        let p = TcpProfile::constant_rate(10_000_000.0);
        let t = p.transfer_time(1_000_000, 1_000_000.0, 1.0);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn factor_scales_rate() {
        let p = TcpProfile::constant_rate(1_000_000.0);
        let t = p.transfer_time(1_000_000, f64::INFINITY, 0.5);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn steps_to_saturation_counts() {
        let p = wan_like();
        // (200k - 40k) / (12k * 0.5) = 26.66 -> 27
        assert_eq!(p.steps_to_saturation(), 27);
        assert_eq!(TcpProfile::constant_rate(1.0).steps_to_saturation(), 0);
    }

    #[test]
    fn chunked_estimate_beats_single_flow_on_capped_links() {
        let p = wan_like();
        let single = p.transfer_time(mib(40), f64::INFINITY, 1.0);
        let chunked = p.chunked_transfer_time(mib(40), mib(4), 4, f64::INFINITY, 1.0);
        assert!(
            chunked < single,
            "chunking should amortize ramp-up and dodge shaping: {chunked:?} vs {single:?}"
        );
    }

    #[test]
    fn chunked_estimate_respects_the_bottleneck() {
        let p = TcpProfile::constant_rate(100_000.0);
        // Four-way parallelism cannot exceed the 150 kB/s segment.
        let t = p.chunked_transfer_time(600_000, 100_000, 4, 150_000.0, 1.0);
        assert!((t.as_secs_f64() - 4.0).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn chunked_estimate_degenerates_to_single_flow() {
        let p = wan_like();
        let single = p.transfer_time(mib(1), f64::INFINITY, 1.0);
        assert_eq!(
            p.chunked_transfer_time(mib(1), mib(4), 4, f64::INFINITY, 1.0),
            single
        );
        assert_eq!(
            p.chunked_transfer_time(mib(1), 0, 4, f64::INFINITY, 1.0),
            single
        );
        assert_eq!(
            p.chunked_transfer_time(mib(1), mib(4), 1, f64::INFINITY, 1.0),
            single
        );
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(mib(2), 2 * 1024 * 1024);
        assert!((mbps(8.0) - 1_000_000.0).abs() < 1e-9);
    }
}
