//! Global string interner for hot-path object names.
//!
//! The steady-state event loop must not allocate, yet almost every record
//! the runtime touches — object metadata, replica indexes, fan-out jobs,
//! DHT record bodies — is keyed by an object *name*. Interning turns each
//! distinct name into a [`Sym`]: a `Copy` 4-byte handle that hashes and
//! compares by id, resolves to `&'static str` without locking, and crosses
//! thread boundaries freely (the prerequisite for the sharded runtime).
//!
//! # Determinism contract
//!
//! Ids are assigned in **insertion order**: the n-th distinct string
//! interned by a process gets id n−1. Two runs that intern the same
//! strings in the same order therefore assign identical ids — the same
//! property the engine's seeded RNG gives events. Two *different* runs (or
//! two tests sharing one process) may assign different ids to the same
//! string, which dictates two hard rules:
//!
//! * **Never iterate a [`SymMap`]/[`SymSet`]** where order can reach
//!   observable output — id-keyed hash order is process-history-dependent.
//!   Keyed access only; ordered walks use `BTreeMap<Sym, _>`, which is
//!   safe because [`Sym`]'s `Ord` compares the *resolved strings*, so a
//!   `BTreeMap<Sym, _>` iterates in exactly the order the old
//!   `BTreeMap<String, _>` did.
//! * **Never serialize raw ids.** Codec and export boundaries resolve
//!   `Sym → &str` ([`Sym::as_str`]) and emit the string bytes; decode
//!   re-interns. The wire format is byte-identical to the `String` era.
//!
//! # Storage
//!
//! Interned strings are leaked once into a global append-only table:
//! a mutex guards insertion (cold path — every distinct name is interned
//! exactly once per process), while resolution walks a chunked array of
//! atomics and never takes a lock or allocates. Memory grows with the set
//! of *distinct* strings ever interned, which for the simulator is the
//! object namespace — bounded and small relative to the event volume.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Mutex;

use crate::hash::{FxHashMap, FxHashSet};

/// Entries per chunk of the resolution table.
const CHUNK_SIZE: usize = 1 << 12;
/// Maximum number of chunks (caps the table at ~16M distinct strings).
const MAX_CHUNKS: usize = 1 << 12;

/// A chunk: fixed array of slots, each a thin pointer to a leaked
/// `&'static str` (double indirection keeps the atomic slot thin).
type Chunk = [AtomicPtr<&'static str>; CHUNK_SIZE];

/// The global interner state.
struct Registry {
    /// Insert-side state: string → id, guarded.
    map: Mutex<FxHashMap<&'static str, u32>>,
    /// Resolve-side state: id → string, lock-free.
    chunks: [AtomicPtr<Chunk>; MAX_CHUNKS],
}

static REGISTRY: Registry = Registry {
    map: Mutex::new(FxHashMap::with_hasher(std::hash::BuildHasherDefault::new())),
    chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_CHUNKS],
};

impl Registry {
    fn intern(&self, s: &str) -> u32 {
        let mut map = self.map.lock().expect("interner poisoned");
        if let Some(&id) = map.get(s) {
            return id;
        }
        let id = u32::try_from(map.len()).expect("interner id space exhausted");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let (ci, si) = (id as usize / CHUNK_SIZE, id as usize % CHUNK_SIZE);
        assert!(ci < MAX_CHUNKS, "interner chunk space exhausted");
        let mut chunk = self.chunks[ci].load(Ordering::Acquire);
        if chunk.is_null() {
            let fresh: Box<Chunk> =
                Box::new([const { AtomicPtr::new(std::ptr::null_mut()) }; CHUNK_SIZE]);
            chunk = Box::into_raw(fresh);
            // Only the mutex holder allocates chunks, so no CAS race.
            self.chunks[ci].store(chunk, Ordering::Release);
        }
        let slot: &'static &'static str = Box::leak(Box::new(leaked));
        // SAFETY: `chunk` was leaked from a valid Box<Chunk> above (or on a
        // previous insert) and is never freed.
        unsafe { (*chunk)[si].store(slot as *const _ as *mut _, Ordering::Release) };
        map.insert(leaked, id);
        id
    }

    fn resolve(&self, id: u32) -> &'static str {
        let (ci, si) = (id as usize / CHUNK_SIZE, id as usize % CHUNK_SIZE);
        let chunk = self.chunks[ci].load(Ordering::Acquire);
        assert!(!chunk.is_null(), "resolve of unknown Sym id {id}");
        // SAFETY: non-null chunk pointers are leaked boxes; a slot is
        // written (with Release) before its id is ever handed out, and the
        // Sym value itself reached this thread through a synchronizing
        // operation.
        let slot = unsafe { (*chunk)[si].load(Ordering::Acquire) };
        assert!(!slot.is_null(), "resolve of unknown Sym id {id}");
        // SAFETY: slots point at leaked `&'static str` values.
        unsafe { *slot }
    }

    fn lookup(&self, s: &str) -> Option<u32> {
        self.map.lock().expect("interner poisoned").get(s).copied()
    }

    fn len(&self) -> usize {
        self.map.lock().expect("interner poisoned").len()
    }
}

/// An interned string: a `Copy` handle that hashes and compares equal by
/// id, orders by resolved string content, and resolves without locking.
///
/// # Examples
///
/// ```
/// use c4h_simnet::Sym;
///
/// let a = Sym::new("photos/beach.jpg");
/// let b = Sym::new("photos/beach.jpg");
/// assert_eq!(a, b); // same string ⇒ same id
/// assert_eq!(a.as_str(), "photos/beach.jpg");
/// assert!(Sym::new("a") < Sym::new("b")); // Ord follows the strings
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Interns `s`, returning its symbol. Allocates only the first time a
    /// distinct string is seen in the process.
    pub fn new(s: &str) -> Sym {
        Sym(REGISTRY.intern(s))
    }

    /// The symbol for `s` if it has already been interned — a read-only
    /// probe that never allocates a table entry.
    pub fn lookup(s: &str) -> Option<Sym> {
        REGISTRY.lookup(s).map(Sym)
    }

    /// Resolves the symbol to its string. Lock-free and allocation-free.
    pub fn as_str(self) -> &'static str {
        REGISTRY.resolve(self.0)
    }

    /// The raw id. Process-history-dependent — never serialize this; it
    /// exists for diagnostics and slab-style dense side tables.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Number of distinct strings interned by this process so far.
    pub fn interned_count() -> usize {
        REGISTRY.len()
    }
}

// Ord by resolved string content, NOT by id: `BTreeMap<Sym, _>` must
// iterate in the exact lexicographic order `BTreeMap<String, _>` did, or
// every ordered walk (repair scans, directory lists, metrics dumps) —
// and with them the golden byte-determinism corpus — would change.
impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Debug as the bare string (like `str`'s Debug): op reports and
        // transcripts print `{:?}` of structs holding names, and their
        // bytes must match the String era.
        std::fmt::Debug::fmt(self.as_str(), f)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::new(s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

// The workspace's serde is an offline marker-trait shim (see
// `third_party/serde`); were a real backend wired in, `Sym` would
// serialize as its resolved string and deserialize by interning.
impl serde::Serialize for Sym {}

impl<'de> serde::Deserialize<'de> for Sym {}

/// Hash map keyed by [`Sym`] (FxHasher over the 4-byte id). Keyed access
/// only — iteration order is process-history-dependent.
pub type SymMap<V> = FxHashMap<Sym, V>;

/// Hash set of [`Sym`]s. Keyed access only, as [`SymMap`].
pub type SymSet = FxHashSet<Sym>;

/// A local, non-global interner with the same insertion-order id
/// assignment as the global table.
///
/// The global table is shared by every test in a process, so its absolute
/// ids can't be asserted against. This standalone instance exists to state
/// the determinism contract in isolation: drive two `Interner`s with the
/// same sequence and the ids must match exactly.
#[derive(Debug, Default)]
pub struct Interner {
    map: FxHashMap<Box<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `s`, assigning the next id on first sight.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = u32::try_from(self.map.len()).expect("interner id space exhausted");
        self.map.insert(s.into(), id);
        id
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_stability() {
        let a = Sym::new("intern-test/alpha");
        let b = Sym::new("intern-test/beta");
        assert_eq!(a.as_str(), "intern-test/alpha");
        assert_eq!(b.as_str(), "intern-test/beta");
        // Re-interning returns the identical handle.
        assert_eq!(a, Sym::new("intern-test/alpha"));
        assert_eq!(a.id(), Sym::new("intern-test/alpha").id());
        assert_ne!(a, b);
        // The resolved reference is stable across calls.
        assert!(std::ptr::eq(a.as_str(), a.as_str()));
    }

    #[test]
    fn lookup_probes_without_inserting() {
        assert_eq!(Sym::lookup("intern-test/never-interned-lookup"), None);
        let s = Sym::new("intern-test/lookup-hit");
        assert_eq!(Sym::lookup("intern-test/lookup-hit"), Some(s));
    }

    #[test]
    fn ord_follows_string_content() {
        // Intern in anti-lexicographic order so id order and string order
        // disagree — Ord must follow the strings.
        let z = Sym::new("intern-test/ord/z");
        let a = Sym::new("intern-test/ord/a");
        let m = Sym::new("intern-test/ord/m");
        assert!(a < m && m < z);
        let mut v = [z, a, m];
        v.sort();
        assert_eq!(v, [a, m, z]);
        // BTreeMap over Syms iterates lexicographically.
        let map: std::collections::BTreeMap<Sym, u32> =
            [(z, 0), (a, 1), (m, 2)].into_iter().collect();
        let keys: Vec<&str> = map.keys().map(|s| s.as_str()).collect();
        assert_eq!(
            keys,
            [
                "intern-test/ord/a",
                "intern-test/ord/m",
                "intern-test/ord/z"
            ]
        );
    }

    #[test]
    fn display_and_debug_match_str() {
        let s = Sym::new("intern-test/display");
        assert_eq!(format!("{s}"), "intern-test/display");
        assert_eq!(format!("{s:?}"), format!("{:?}", "intern-test/display"));
    }

    #[test]
    fn equality_with_str() {
        let s = Sym::new("intern-test/eq");
        assert_eq!(s, "intern-test/eq");
        assert_eq!(s, *"intern-test/eq");
        assert!(s != "intern-test/other");
    }

    #[test]
    fn local_interner_assigns_insertion_order_ids() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("c"), 2);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn syms_cross_thread_boundaries() {
        let s = Sym::new("intern-test/threads");
        let handle = std::thread::spawn(move || {
            assert_eq!(s.as_str(), "intern-test/threads");
            Sym::new("intern-test/threads")
        });
        let other = handle.join().expect("thread");
        assert_eq!(s, other);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The determinism contract: two runs that intern the same
            /// (interleaved, repeating) sequence of strings assign
            /// identical ids, and ids are dense first-occurrence ranks.
            #[test]
            fn interleaved_interning_assigns_identical_ids(
                pool in proptest::collection::vec("[a-z]{1,10}(/[a-z0-9]{1,6}){0,2}", 1..12),
                picks in proptest::collection::vec(any::<u16>(), 1..128),
            ) {
                let sequence: Vec<&str> = picks
                    .iter()
                    .map(|&i| pool[i as usize % pool.len()].as_str())
                    .collect();
                let mut run_a = Interner::new();
                let mut run_b = Interner::new();
                let ids_a: Vec<u32> = sequence.iter().map(|s| run_a.intern(s)).collect();
                let ids_b: Vec<u32> = sequence.iter().map(|s| run_b.intern(s)).collect();
                prop_assert_eq!(&ids_a, &ids_b);
                // Ids are first-occurrence ranks: recomputing them from
                // the sequence alone reproduces the assignment.
                let mut seen: Vec<&str> = Vec::new();
                let ranks: Vec<u32> = sequence
                    .iter()
                    .map(|s| match seen.iter().position(|&t| t == *s) {
                        Some(p) => p as u32,
                        None => {
                            seen.push(s);
                            (seen.len() - 1) as u32
                        }
                    })
                    .collect();
                prop_assert_eq!(ids_a, ranks);
                prop_assert_eq!(run_a.len(), seen.len());
            }

            /// Global-table symmetry: equal strings produce equal symbols
            /// and round-trip through resolution, regardless of what other
            /// tests interned first.
            #[test]
            fn global_intern_round_trips(name in "[a-z]{1,10}(/[a-z0-9]{1,6}){0,2}") {
                let a = Sym::new(&name);
                let b = Sym::new(&name);
                prop_assert_eq!(a, b);
                prop_assert_eq!(a.as_str(), name.as_str());
            }
        }
    }
}
