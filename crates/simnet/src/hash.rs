//! A fast, deterministic hasher for simulation-internal maps.
//!
//! `std`'s default `SipHash-1-3` exists to resist HashDoS from untrusted
//! keys; simulation-internal maps (routing tables, flow registries, op
//! indexes) only ever hash trusted keys, so the hot loop pays SipHash's
//! per-byte cost for nothing. [`FxHasher`] is the multiply-xor hash used
//! by the Rust compiler's own interning tables (`rustc-hash`): one
//! wrapping multiply per word of input, typically 3–6× faster on the
//! short integer-ish keys these maps use.
//!
//! It is also *deterministic*: no per-instance random state, so iteration
//! order for a given insertion history is stable across runs and
//! machines. The simulation's behavior never depends on map iteration
//! order (the golden byte-determinism corpus in `tests/golden_runs.rs`
//! enforces this), so determinism here is a hardening bonus rather than a
//! requirement — but it means a latent iteration-order dependence shows
//! up as a reproducible digest mismatch instead of a cross-machine
//! heisenbug.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`] — drop-in for `std::collections::HashMap`
/// on trusted simulation-internal keys.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` variant of [`FxHashMap`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-state builder producing [`FxHasher`]s; `Default` yields identical
/// hashers everywhere, which is what makes the maps deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 64-bit odd constant from the golden-ratio family (same as `rustc-hash`):
/// multiplication by it mixes low-entropy integer keys across the high
/// bits that `HashMap` actually uses for bucket selection.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

const ROTATE: u32 = 5;

/// The `rustc-hash` multiply-xor hasher: `hash = (hash.rotl(5) ^ word) * SEED`
/// per 8-byte word, with the tail bytes folded in the same way.
///
/// Not HashDoS-resistant — use only on keys the simulation itself
/// generates, never on external input.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"route-key"), hash_of(&"route-key"));
        assert_eq!(hash_of(&(3usize, 7usize)), hash_of(&(3usize, 7usize)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test — just a tripwire against a degenerate
        // implementation (e.g. dropping the multiply).
        let hashes: std::collections::HashSet<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn tail_bytes_affect_the_hash() {
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&"abcdefgi"));
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get("key-37"), Some(&37));
        assert_eq!(m.remove("key-37"), Some(37));
        assert_eq!(m.get("key-37"), None);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }
}
