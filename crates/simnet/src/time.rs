//! Virtual time for the discrete-event simulation.
//!
//! All Cloud4Home experiments run in *virtual* time: latencies, transfer
//! times, and service execution times advance a [`SimTime`] clock instead of
//! the wall clock, which makes every experiment deterministic under a fixed
//! RNG seed.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// An instant on the simulation's virtual clock, in nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is a thin newtype over `u64`; arithmetic with
/// [`std::time::Duration`] is supported directly.
///
/// # Examples
///
/// ```
/// use c4h_simnet::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(250);
/// assert_eq!(t.as_millis_f64(), 250.0);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The farthest representable instant; useful as a sentinel "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a `SimTime` from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a `SimTime` from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates a `SimTime` from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates a `SimTime` from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Virtual time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Virtual time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// Elapsed duration since `earlier`, or `None` if `earlier` is later.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration::from_nanos)
    }

    /// Saturating addition of a duration (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos() as u64))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.as_millis_f64();
        if ms >= 1000.0 {
            write!(f, "{:.3}s", ms / 1000.0)
        } else {
            write!(f, "{ms:.3}ms")
        }
    }
}

/// Converts fractional seconds into a [`Duration`], clamping negatives to zero.
///
/// This is the conversion used throughout the network model when rates
/// (bytes/second) are turned into completion times.
pub fn duration_from_secs_f64(secs: f64) -> Duration {
    if secs <= 0.0 || !secs.is_finite() {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn add_and_subtract() {
        let a = SimTime::from_millis(100);
        let b = a + Duration::from_millis(50);
        assert_eq!(b - a, Duration::from_millis(50));
        assert_eq!(b.duration_since(a), Duration::from_millis(50));
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_when_reversed() {
        let a = SimTime::from_millis(1);
        let _ = SimTime::ZERO.duration_since(a);
    }

    #[test]
    fn display_switches_units() {
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000s");
    }

    #[test]
    fn saturating_add_clamps() {
        let t = SimTime::MAX.saturating_add(Duration::from_secs(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn duration_from_secs_handles_bad_input() {
        assert_eq!(duration_from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(duration_from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(duration_from_secs_f64(0.5), Duration::from_millis(500));
    }
}
