//! Fluid-flow bulk-transfer engine with max-min fair bandwidth sharing.
//!
//! Bulk object transfers are modeled as *flows*: a source, a destination, a
//! byte count, and a path of shared [`Segment`](crate::topology::Segment)s.
//! At any instant every flow has a rate, computed by progressive-filling
//! max-min fair allocation subject to each flow's TCP cap (which ramps up
//! over time and may degrade after a sustained-byte threshold — see
//! [`TcpProfile`]). Between rate changes the system is linear, so the engine
//! only needs to handle discrete events: flow arrival, setup completion,
//! ramp steps, sustained-threshold crossings, and completions.
//!
//! The engine is pull-based: the simulation runtime asks for
//! [`FlowNet::next_event`] and merges it with its own event queue, then calls
//! [`FlowNet::advance`] to accrue progress and collect completions.

use std::collections::BTreeMap;
use std::time::Duration;

use c4h_telemetry::{ArgValue, Recorder, SpanId};

use crate::tcp::TcpProfile;
use crate::time::{duration_from_secs_f64, SimTime};
use crate::topology::{Addr, SegmentId, Topology};
use crate::DetRng;

/// Telemetry track base for network-flow spans: flow `n` renders on track
/// `NET_TRACK_BASE + n`, keeping flows clear of the per-operation tracks.
pub const NET_TRACK_BASE: u64 = 2_000_000;

/// Identifier of an in-flight bulk transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

impl FlowId {
    /// The raw identifier.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// Chunking policy for a bulk transfer started via
/// [`FlowNet::start_transfer`].
///
/// Objects larger than `chunk_bytes` are split into pipelined chunks of at
/// most `chunk_bytes` each, with up to `window` chunk flows in flight at
/// once. Each chunk is an ordinary flow subject to max-min fair sharing and
/// the route's TCP profile, so chunking amortizes slow-start ramp-up and —
/// because per-flow caps apply per chunk — lets one logical transfer use
/// more of a segment than a single capped flow could.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpec {
    /// Maximum bytes per chunk; transfers at or below this size are not
    /// split.
    pub chunk_bytes: u64,
    /// Maximum concurrent chunk flows for one transfer.
    pub window: usize,
}

/// An event produced by the flow engine during [`FlowNet::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowEvent {
    /// The flow delivered its final byte at the given instant.
    Completed {
        /// The finished transfer.
        flow: FlowId,
        /// When the final byte arrived.
        at: SimTime,
    },
}

/// Errors returned by [`FlowNet::start_flow`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No route is configured between the endpoints' sites.
    NoRoute {
        /// The transfer's source endpoint.
        src: Addr,
        /// The transfer's destination endpoint.
        dst: Addr,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NoRoute { src, dst } => {
                write!(f, "no route between {src} and {dst}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Half a byte: flows complete once within this tolerance of their total.
const COMPLETE_EPS: f64 = 0.5;

#[derive(Debug)]
struct Flow {
    id: FlowId,
    path: Vec<SegmentId>,
    total_bytes: u64,
    sent: f64,
    tcp: TcpProfile,
    /// Per-flow bandwidth availability factor (WAN variability).
    factor: f64,
    /// Instant the connection setup completes and bytes start moving.
    active_from: SimTime,
    /// Current allocated rate, bytes/second (0 while in setup).
    rate: f64,
    /// Chunked-transfer parent, when this flow carries one chunk of a
    /// larger logical transfer. Chunk completions feed the parent instead of
    /// surfacing as [`FlowEvent`]s.
    parent: Option<FlowId>,
}

/// A chunked logical transfer: a facade over a pipeline of chunk flows,
/// exposed to callers under a single parent [`FlowId`].
#[derive(Debug)]
struct Transfer {
    path: Vec<SegmentId>,
    tcp: TcpProfile,
    /// One bandwidth factor sampled at transfer start and shared by every
    /// chunk, so chunk dispatch never consumes randomness mid-run.
    factor: f64,
    chunk_bytes: u64,
    total_bytes: u64,
    /// Bytes not yet dispatched as chunk flows.
    undispatched: u64,
    /// Chunk flows currently in flight.
    live: Vec<FlowId>,
    /// Bytes of fully delivered chunks.
    delivered: u64,
}

impl Flow {
    fn is_active(&self, now: SimTime) -> bool {
        now >= self.active_from
    }

    /// The flow's own rate cap at `now` (before sharing).
    fn cap(&self, now: SimTime) -> f64 {
        let active = now
            .checked_duration_since(self.active_from)
            .unwrap_or_default();
        self.tcp.cap_at(active, self.sent as u64) * self.factor
    }

    /// The next instant at which this flow's cap changes on its own
    /// (ramp step or sustained-threshold crossing), given its current rate.
    fn next_cap_change(&self, now: SimTime) -> Option<SimTime> {
        if !self.is_active(now) {
            return Some(self.active_from);
        }
        let mut next: Option<SimTime> = None;
        // Ramp step boundary, computed in integer nanoseconds to avoid
        // floating-point boundary loops.
        let sustained_active = self
            .tcp
            .sustained
            .is_some_and(|s| self.sent as u64 >= s.threshold_bytes);
        if !sustained_active
            && self.tcp.ramp_bps_per_sec > 0.0
            && !self.tcp.ramp_step.is_zero()
            && self.cap(now) < self.tcp.rate_cap_bps * self.factor
        {
            let step_ns = self.tcp.ramp_step.as_nanos() as u64;
            let active_ns = (now - self.active_from).as_nanos() as u64;
            let k = active_ns / step_ns;
            let boundary = SimTime::from_nanos(self.active_from.as_nanos() + (k + 1) * step_ns);
            next = Some(boundary);
        }
        // Sustained-threshold crossing at the current rate.
        if let Some(s) = self.tcp.sustained {
            if (self.sent as u64) < s.threshold_bytes && self.rate > 0.0 {
                let secs = (s.threshold_bytes as f64 - self.sent) / self.rate;
                // Never schedule a zero-length event: a crossing whose
                // remaining time rounds below 1 ns would pin the engine at
                // the current instant forever.
                let at = now + duration_from_secs_f64(secs).max(Duration::from_nanos(1));
                next = Some(next.map_or(at, |n| n.min(at)));
            }
        }
        next
    }

    /// The instant this flow completes at its current rate, if it is moving.
    fn completion_time(&self, now: SimTime) -> Option<SimTime> {
        if !self.is_active(now) || self.rate <= 0.0 {
            return None;
        }
        let remaining = (self.total_bytes as f64 - self.sent).max(0.0);
        if remaining <= COMPLETE_EPS {
            // Already within the completion tolerance: fire immediately.
            return Some(now);
        }
        let secs = remaining / self.rate;
        Some(now + duration_from_secs_f64(secs).max(Duration::from_nanos(1)))
    }
}

/// Progress report for an in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowProgress {
    /// Bytes delivered so far.
    pub sent_bytes: f64,
    /// Total bytes to deliver.
    pub total_bytes: u64,
    /// Current allocated rate (bytes/second).
    pub rate_bps: f64,
}

/// Point-in-time load on one topology segment, for the health plane.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentLoad {
    /// The segment's name (e.g. `"home-lan"`, `"wan-up"`).
    pub name: String,
    /// Sum of the rates currently allocated to flows crossing the segment,
    /// bytes/second.
    pub allocated_bps: f64,
    /// The segment's configured capacity, bytes/second.
    pub capacity_bps: f64,
    /// Number of active flows (chunk flows included) crossing the segment.
    pub flows: usize,
}

impl SegmentLoad {
    /// Utilization as integer permille of capacity, clamped to `[0, 1000]`.
    ///
    /// Integer fixed-point keeps gauge exports byte-stable; the max-min
    /// allocator never overfills a segment, so the clamp only guards
    /// floating-point rounding at the top.
    pub fn util_permille(&self) -> u64 {
        if self.capacity_bps <= 0.0 {
            return 0;
        }
        let permille = (self.allocated_bps * 1000.0 / self.capacity_bps).round();
        (permille.max(0.0) as u64).min(1000)
    }
}

/// The fluid-flow bulk transfer network.
///
/// # Examples
///
/// ```
/// use c4h_simnet::{Addr, FlowNet, LatencyModel, SimTime, TcpProfile, Topology, DetRng};
/// use std::time::Duration;
///
/// let mut b = Topology::builder();
/// let lan = b.segment("lan", 1000.0);
/// let home = b.site("home");
/// b.route(
///     home,
///     home,
///     vec![lan],
///     LatencyModel { base: Duration::from_millis(1), jitter: 0.0 },
///     TcpProfile::constant_rate(2000.0),
///     1.0,
///     0.0,
/// );
/// let mut topo = b.build();
/// topo.attach(Addr::new(1), home);
/// topo.attach(Addr::new(2), home);
///
/// let mut net = FlowNet::new(topo);
/// let mut rng = DetRng::seed(0);
/// net.start_flow(SimTime::ZERO, Addr::new(1), Addr::new(2), 1000, &mut rng).unwrap();
/// // The 1000-byte flow is segment-limited to 1000 B/s: done after 1 s.
/// let done_at = net.next_event().unwrap();
/// assert_eq!(done_at, SimTime::from_secs(1));
/// let events = net.advance(done_at);
/// assert_eq!(events.len(), 1);
/// ```
#[derive(Debug)]
pub struct FlowNet {
    topology: Topology,
    now: SimTime,
    flows: BTreeMap<FlowId, Flow>,
    transfers: BTreeMap<FlowId, Transfer>,
    next_id: u64,
    alloc_dirty: bool,
    recorder: Option<Recorder>,
    spans: BTreeMap<FlowId, SpanId>,
    counters: FlowCounters,
}

/// Cumulative logical-transfer counts, maintained whether or not a
/// telemetry recorder is attached — the engine-introspection view of the
/// flow network (a chunked transfer counts once).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowCounters {
    /// Transfers started.
    pub started: u64,
    /// Transfers that delivered every byte.
    pub completed: u64,
    /// Transfers canceled in flight.
    pub canceled: u64,
}

impl FlowNet {
    /// Creates an engine over a fully attached topology.
    pub fn new(topology: Topology) -> Self {
        FlowNet {
            topology,
            now: SimTime::ZERO,
            flows: BTreeMap::new(),
            transfers: BTreeMap::new(),
            next_id: 0,
            alloc_dirty: false,
            recorder: None,
            spans: BTreeMap::new(),
            counters: FlowCounters::default(),
        }
    }

    /// Attaches a telemetry recorder: every flow becomes a `net.flow` span
    /// (with `src`/`dst`/`bytes` arguments) on track
    /// [`NET_TRACK_BASE`]` + flow id`, and delivered bytes accumulate into
    /// per-segment counters.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Ids of all in-flight logical transfers (plain flows and chunked
    /// parents), in creation order.
    pub fn flow_ids(&self) -> Vec<FlowId> {
        let mut ids: Vec<FlowId> = self
            .flows
            .values()
            .filter(|f| f.parent.is_none())
            .map(|f| f.id)
            .chain(self.transfers.keys().copied())
            .collect();
        ids.sort();
        ids
    }

    /// The segments a flow's bytes traverse, if it is still in flight.
    pub fn flow_path(&self, id: FlowId) -> Option<&[SegmentId]> {
        self.flows
            .get(&id)
            .map(|f| f.path.as_slice())
            .or_else(|| self.transfers.get(&id).map(|t| t.path.as_slice()))
    }

    /// A flow's own rate cap (TCP profile and bandwidth factor, before
    /// max-min sharing) at the engine's current instant.
    pub fn flow_cap(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.cap(self.now))
    }

    /// Credits a finished or canceled flow's delivered bytes to the
    /// per-segment byte counters and closes its span.
    fn retire_flow_telemetry(&mut self, id: FlowId, sent: u64, path: &[SegmentId], done: bool) {
        if done {
            self.counters.completed += 1;
        } else {
            self.counters.canceled += 1;
        }
        let span = self.spans.remove(&id);
        let Some(rec) = &self.recorder else { return };
        for seg in path {
            rec.add(
                format!("net.segment_bytes.{}", self.topology.segment(*seg).name()),
                sent,
            );
        }
        rec.add(
            if done {
                "net.flows_completed"
            } else {
                "net.flows_canceled"
            },
            1,
        );
        if let Some(span) = span {
            rec.end_args(
                span,
                self.now.as_nanos(),
                vec![
                    ("sent", ArgValue::from(sent)),
                    ("done", ArgValue::from(done)),
                ],
            );
        }
    }

    /// The static topology (for latency sampling and analytic estimates).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access, for modeling changing network conditions.
    /// In-flight flows keep their already-sampled parameters.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The engine's current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of logical transfers currently in flight (a chunked transfer
    /// counts once, however many chunk flows it has live).
    pub fn in_flight(&self) -> usize {
        self.flows.values().filter(|f| f.parent.is_none()).count() + self.transfers.len()
    }

    /// Cumulative started/completed/canceled logical-transfer counts (kept
    /// with or without a recorder attached).
    pub fn counters(&self) -> FlowCounters {
        self.counters
    }

    /// Current load on every topology segment, in segment-id order.
    ///
    /// Takes `&mut self` because pending flow arrivals/departures may have
    /// marked the allocation dirty; rates are re-derived first (like
    /// [`FlowNet::next_event`]) so the report reflects the engine's present
    /// instant. Reallocation is deterministic, so probing for health
    /// samples never perturbs flow outcomes.
    pub fn segment_loads(&mut self) -> Vec<SegmentLoad> {
        if self.alloc_dirty {
            self.reallocate();
        }
        let mut loads: Vec<SegmentLoad> = self
            .topology
            .segments()
            .iter()
            .map(|s| SegmentLoad {
                name: s.name().to_owned(),
                allocated_bps: 0.0,
                capacity_bps: s.capacity_bps(),
                flows: 0,
            })
            .collect();
        for f in self.flows.values() {
            for seg in &f.path {
                let load = &mut loads[seg.0];
                load.allocated_bps += f.rate;
                load.flows += 1;
            }
        }
        loads
    }

    /// Progress of a flow or chunked transfer, if still in flight.
    pub fn progress(&self, id: FlowId) -> Option<FlowProgress> {
        if let Some(t) = self.transfers.get(&id) {
            let chunks = t.live.iter().filter_map(|c| self.flows.get(c));
            let live_sent: f64 = chunks.clone().map(|f| f.sent).sum();
            let rate: f64 = chunks.map(|f| f.rate).sum();
            return Some(FlowProgress {
                sent_bytes: t.delivered as f64 + live_sent,
                total_bytes: t.total_bytes,
                rate_bps: rate,
            });
        }
        self.flows.get(&id).map(|f| FlowProgress {
            sent_bytes: f.sent,
            total_bytes: f.total_bytes,
            rate_bps: f.rate,
        })
    }

    /// Starts a bulk transfer of `bytes` from `src` to `dst`.
    ///
    /// The route's TCP profile governs setup cost, ramp-up, and long-transfer
    /// degradation; a per-flow bandwidth factor is sampled from the route's
    /// variability model using `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoRoute`] if the endpoints' sites are not
    /// connected.
    ///
    /// # Panics
    ///
    /// Panics if `now` is in the engine's past — call [`FlowNet::advance`]
    /// first.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: Addr,
        dst: Addr,
        bytes: u64,
        rng: &mut DetRng,
    ) -> Result<FlowId, NetError> {
        assert!(
            now >= self.now,
            "start_flow at {now} is in the engine's past ({})",
            self.now
        );
        debug_assert!(
            self.next_internal_event().is_none_or(|t| t >= now),
            "caller must advance() before starting flows"
        );
        self.now = now;
        let route = self
            .topology
            .route_between(src, dst)
            .ok_or(NetError::NoRoute { src, dst })?;
        let factor = route.sample_bandwidth_factor(rng);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let flow = Flow {
            id,
            path: route.segments.clone(),
            total_bytes: bytes.max(1),
            sent: 0.0,
            tcp: route.tcp.clone(),
            factor,
            active_from: now + route.tcp.setup,
            rate: 0.0,
            parent: None,
        };
        self.flows.insert(id, flow);
        self.alloc_dirty = true;
        self.counters.started += 1;
        if let Some(rec) = &self.recorder {
            rec.add("net.flows_started", 1);
            let span = rec.begin_args(
                "net",
                "net.flow",
                NET_TRACK_BASE + id.0,
                now.as_nanos(),
                vec![
                    ("src", ArgValue::from(src.raw())),
                    ("dst", ArgValue::from(dst.raw())),
                    ("bytes", ArgValue::from(bytes)),
                ],
            );
            if !span.is_none() {
                self.spans.insert(id, span);
            }
        }
        Ok(id)
    }

    /// Starts a bulk transfer that is split into pipelined chunk flows when
    /// `chunking` applies (the transfer exceeds `chunk_bytes`). The caller
    /// sees one [`FlowId`]: a single `Completed` event fires when the last
    /// chunk lands, and [`FlowNet::cancel`]/[`FlowNet::progress`] operate on
    /// the whole transfer. With `chunking == None` (or a transfer small
    /// enough not to split) this is exactly [`FlowNet::start_flow`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoRoute`] if the endpoints' sites are not
    /// connected.
    ///
    /// # Panics
    ///
    /// Panics if `now` is in the engine's past — call [`FlowNet::advance`]
    /// first.
    pub fn start_transfer(
        &mut self,
        now: SimTime,
        src: Addr,
        dst: Addr,
        bytes: u64,
        chunking: Option<ChunkSpec>,
        rng: &mut DetRng,
    ) -> Result<FlowId, NetError> {
        let bytes = bytes.max(1);
        let Some(spec) = chunking else {
            return self.start_flow(now, src, dst, bytes, rng);
        };
        if spec.chunk_bytes == 0 || bytes <= spec.chunk_bytes || spec.window < 2 {
            return self.start_flow(now, src, dst, bytes, rng);
        }
        assert!(
            now >= self.now,
            "start_transfer at {now} is in the engine's past ({})",
            self.now
        );
        debug_assert!(
            self.next_internal_event().is_none_or(|t| t >= now),
            "caller must advance() before starting transfers"
        );
        self.now = now;
        let route = self
            .topology
            .route_between(src, dst)
            .ok_or(NetError::NoRoute { src, dst })?;
        let factor = route.sample_bandwidth_factor(rng);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let mut transfer = Transfer {
            path: route.segments.clone(),
            tcp: route.tcp.clone(),
            factor,
            chunk_bytes: spec.chunk_bytes,
            total_bytes: bytes,
            undispatched: bytes,
            live: Vec::new(),
            delivered: 0,
        };
        self.counters.started += 1;
        if let Some(rec) = &self.recorder {
            rec.add("net.flows_started", 1);
            let span = rec.begin_args(
                "net",
                "net.flow",
                NET_TRACK_BASE + id.0,
                now.as_nanos(),
                vec![
                    ("src", ArgValue::from(src.raw())),
                    ("dst", ArgValue::from(dst.raw())),
                    ("bytes", ArgValue::from(bytes)),
                    ("chunks", ArgValue::from(bytes.div_ceil(spec.chunk_bytes))),
                ],
            );
            if !span.is_none() {
                self.spans.insert(id, span);
            }
        }
        for _ in 0..spec.window {
            if !self.dispatch_chunk(id, &mut transfer) {
                break;
            }
        }
        self.transfers.insert(id, transfer);
        self.alloc_dirty = true;
        Ok(id)
    }

    /// Launches the next chunk flow of a chunked transfer, if any bytes
    /// remain undispatched. Chunks reuse the factor sampled at transfer
    /// start, so dispatch is deterministic and consumes no randomness.
    fn dispatch_chunk(&mut self, parent: FlowId, transfer: &mut Transfer) -> bool {
        if transfer.undispatched == 0 {
            return false;
        }
        let bytes = transfer.undispatched.min(transfer.chunk_bytes);
        transfer.undispatched -= bytes;
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let flow = Flow {
            id,
            path: transfer.path.clone(),
            total_bytes: bytes,
            sent: 0.0,
            tcp: transfer.tcp.clone(),
            factor: transfer.factor,
            active_from: self.now + transfer.tcp.setup,
            rate: 0.0,
            parent: Some(parent),
        };
        self.flows.insert(id, flow);
        transfer.live.push(id);
        if let Some(rec) = &self.recorder {
            rec.add("net.chunks_started", 1);
        }
        true
    }

    /// Cancels an in-flight transfer (and, for a chunked transfer, every
    /// live chunk flow). Returns `true` if it existed.
    pub fn cancel(&mut self, id: FlowId) -> bool {
        if let Some(transfer) = self.transfers.remove(&id) {
            let mut sent = transfer.delivered as f64;
            for chunk in &transfer.live {
                if let Some(f) = self.flows.remove(chunk) {
                    sent += f.sent;
                }
            }
            self.alloc_dirty = true;
            self.retire_flow_telemetry(id, sent as u64, &transfer.path, false);
            return true;
        }
        let Some(flow) = self.flows.remove(&id) else {
            self.spans.remove(&id);
            return false;
        };
        self.alloc_dirty = true;
        if let Some(parent) = flow.parent {
            // A chunk canceled directly just shrinks its parent transfer.
            if let Some(t) = self.transfers.get_mut(&parent) {
                t.live.retain(|f| *f != id);
                t.total_bytes = t.total_bytes.saturating_sub(flow.total_bytes);
            }
            return true;
        }
        let (sent, path) = (flow.sent as u64, flow.path);
        self.retire_flow_telemetry(id, sent, &path, false);
        true
    }

    /// The next instant at which the flow engine has something to report
    /// (a completion or an internal rate change), or `None` when idle.
    ///
    /// The runtime merges this with its own event queue and calls
    /// [`FlowNet::advance`] up to the earlier of the two.
    pub fn next_event(&mut self) -> Option<SimTime> {
        if self.alloc_dirty {
            self.reallocate();
        }
        self.next_internal_event()
    }

    /// Advances the engine to `to`, accruing transfer progress, and returns
    /// the completions that occurred (in completion order).
    ///
    /// Allocates a fresh `Vec` per call; hot loops should prefer
    /// [`FlowNet::advance_into`] with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past.
    pub fn advance(&mut self, to: SimTime) -> Vec<FlowEvent> {
        let mut out = Vec::new();
        self.advance_into(to, &mut out);
        out
    }

    /// Allocation-lean [`FlowNet::advance`]: appends the completions that
    /// occurred to `out` (cleared first) instead of returning a fresh `Vec`,
    /// so a caller-held buffer amortizes across the simulation's main loop.
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past.
    pub fn advance_into(&mut self, to: SimTime, out: &mut Vec<FlowEvent>) {
        assert!(to >= self.now, "cannot rewind flow engine");
        out.clear();
        while self.now < to {
            if self.alloc_dirty {
                self.reallocate();
            }
            let step_end = self
                .next_internal_event()
                .map_or(to, |t| t.min(to))
                .max(self.now);
            let dt = (step_end - self.now).as_secs_f64();
            if dt > 0.0 {
                for f in self.flows.values_mut() {
                    if f.is_active(self.now) && f.rate > 0.0 {
                        f.sent = (f.sent + f.rate * dt).min(f.total_bytes as f64);
                    }
                }
            }
            self.now = step_end;
            self.fire_completions(out);
            // Caps may have changed at this boundary (setup completion, ramp
            // step, sustained-threshold crossing) — always refresh rates.
            self.alloc_dirty = true;
        }
        // Completions landing exactly on `to` when the loop body didn't run.
        self.fire_completions(out);
    }

    /// Removes completed flows at the current instant.
    fn fire_completions(&mut self, out: &mut Vec<FlowEvent>) {
        let now = self.now;
        let done: Vec<FlowId> = self
            .flows
            .values()
            .filter(|f| f.is_active(now) && f.sent + COMPLETE_EPS >= f.total_bytes as f64)
            .map(|f| f.id)
            .collect();
        for id in done {
            let flow = self.flows.remove(&id).expect("completion listed a flow");
            self.alloc_dirty = true;
            let Some(parent) = flow.parent else {
                out.push(FlowEvent::Completed { flow: id, at: now });
                self.retire_flow_telemetry(id, flow.total_bytes, &flow.path, true);
                continue;
            };
            // A chunk landed: credit the parent, keep the pipeline full, and
            // surface the parent's completion once the last chunk is in.
            let Some(mut transfer) = self.transfers.remove(&parent) else {
                continue;
            };
            transfer.live.retain(|f| *f != id);
            transfer.delivered += flow.total_bytes;
            self.dispatch_chunk(parent, &mut transfer);
            if transfer.live.is_empty() && transfer.undispatched == 0 {
                out.push(FlowEvent::Completed {
                    flow: parent,
                    at: now,
                });
                self.retire_flow_telemetry(parent, transfer.total_bytes, &transfer.path, true);
            } else {
                self.transfers.insert(parent, transfer);
            }
        }
    }

    /// Earliest internal event across all flows, using current rates.
    fn next_internal_event(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        for f in self.flows.values() {
            for t in [f.completion_time(self.now), f.next_cap_change(self.now)]
                .into_iter()
                .flatten()
            {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        next
    }

    /// Progressive-filling max-min fair allocation subject to per-flow caps.
    fn reallocate(&mut self) {
        let now = self.now;
        let mut residual: Vec<f64> = self
            .topology
            .segments()
            .iter()
            .map(|s| s.capacity_bps())
            .collect();
        let mut count = vec![0usize; residual.len()];
        let mut unfixed: Vec<FlowId> = Vec::new();
        for f in self.flows.values_mut() {
            if f.is_active(now) {
                for s in &f.path {
                    count[s.0] += 1;
                }
                unfixed.push(f.id);
            } else {
                f.rate = 0.0;
            }
        }
        while !unfixed.is_empty() {
            // Find the unfixed flow with the smallest achievable rate.
            let mut best: Option<(f64, usize)> = None;
            for (i, id) in unfixed.iter().enumerate() {
                let f = &self.flows[id];
                let share = f
                    .path
                    .iter()
                    .map(|s| residual[s.0].max(0.0) / count[s.0].max(1) as f64)
                    .fold(f64::INFINITY, f64::min);
                let r = f.cap(now).min(share);
                if best.is_none_or(|(b, _)| r < b) {
                    best = Some((r, i));
                }
            }
            let (rate, idx) = best.expect("unfixed flows must yield a candidate");
            let id = unfixed.swap_remove(idx);
            let path = {
                let f = self.flows.get_mut(&id).expect("flow exists");
                f.rate = rate;
                f.path.clone()
            };
            for s in &path {
                residual[s.0] -= rate;
                count[s.0] -= 1;
            }
        }
        self.alloc_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LatencyModel;
    use std::time::Duration;

    fn topo(seg_cap: f64, flow_cap: f64) -> Topology {
        let mut b = Topology::builder();
        let lan = b.segment("lan", seg_cap);
        let home = b.site("home");
        b.route(
            home,
            home,
            vec![lan],
            LatencyModel {
                base: Duration::from_millis(1),
                jitter: 0.0,
            },
            TcpProfile::constant_rate(flow_cap),
            1.0,
            0.0,
        );
        let mut t = b.build();
        for i in 0..8 {
            t.attach(Addr::new(i), home);
        }
        t
    }

    fn drain(net: &mut FlowNet) -> Vec<(FlowId, SimTime)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_event() {
            for ev in net.advance(t) {
                let FlowEvent::Completed { flow, at } = ev;
                out.push((flow, at));
            }
        }
        out
    }

    #[test]
    fn segment_loads_report_allocation_and_flow_counts() {
        // Segment 1000 B/s, per-flow cap 2000: two flows get 500 each.
        let mut net = FlowNet::new(topo(1_000.0, 2_000.0));
        let mut rng = DetRng::seed(0);
        for i in 0..2 {
            net.start_flow(
                SimTime::ZERO,
                Addr::new(i),
                Addr::new(i + 2),
                10_000,
                &mut rng,
            )
            .unwrap();
        }
        let loads = net.segment_loads();
        assert_eq!(loads.len(), 1);
        let lan = &loads[0];
        assert_eq!(lan.name, "lan");
        assert_eq!(lan.flows, 2);
        assert_eq!(lan.capacity_bps, 1_000.0);
        assert!((lan.allocated_bps - 1_000.0).abs() < 1e-6);
        assert_eq!(lan.util_permille(), 1000);
        drain(&mut net);
        let idle = net.segment_loads();
        assert_eq!(idle[0].flows, 0);
        assert_eq!(idle[0].util_permille(), 0);
    }

    #[test]
    fn single_flow_is_cap_limited() {
        let mut net = FlowNet::new(topo(10_000.0, 1_000.0));
        let mut rng = DetRng::seed(0);
        net.start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), 2_000, &mut rng)
            .unwrap();
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, SimTime::from_secs(2));
    }

    #[test]
    fn two_flows_share_the_segment_fairly() {
        // Segment 1000 B/s, per-flow cap 2000: two flows get 500 each.
        let mut net = FlowNet::new(topo(1_000.0, 2_000.0));
        let mut rng = DetRng::seed(0);
        for i in 0..2 {
            net.start_flow(
                SimTime::ZERO,
                Addr::new(i),
                Addr::new(i + 2),
                1_000,
                &mut rng,
            )
            .unwrap();
        }
        let done = drain(&mut net);
        assert_eq!(done.len(), 2);
        // Both finish together at t = 1000 / 500 = 2 s.
        for (_, at) in &done {
            assert_eq!(*at, SimTime::from_secs(2));
        }
    }

    #[test]
    fn departing_flow_frees_bandwidth() {
        // Two flows on a 1000 B/s segment; one is short. After it finishes,
        // the survivor speeds up to the full segment rate.
        let mut net = FlowNet::new(topo(1_000.0, 2_000.0));
        let mut rng = DetRng::seed(0);
        let _short = net
            .start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), 500, &mut rng)
            .unwrap();
        let long = net
            .start_flow(SimTime::ZERO, Addr::new(2), Addr::new(3), 1_500, &mut rng)
            .unwrap();
        let done = drain(&mut net);
        // short: 500 B at 500 B/s -> t=1s. long: 500 B by t=1s, then
        // 1000 B at 1000 B/s -> t=2s.
        assert_eq!(done[0].1, SimTime::from_secs(1));
        assert_eq!(done[1], (long, SimTime::from_secs(2)));
    }

    #[test]
    fn caps_below_fair_share_leave_bandwidth_for_others() {
        // Segment 1000; flow A capped at 200 -> flow B gets 800.
        let mut b = Topology::builder();
        let lan = b.segment("lan", 1_000.0);
        let home = b.site("home");
        let slow_site = b.site("slow");
        let lat = LatencyModel {
            base: Duration::from_millis(1),
            jitter: 0.0,
        };
        b.route(
            home,
            home,
            vec![lan],
            lat,
            TcpProfile::constant_rate(2_000.0),
            1.0,
            0.0,
        );
        b.route(
            home,
            slow_site,
            vec![lan],
            lat,
            TcpProfile::constant_rate(200.0),
            1.0,
            0.0,
        );
        let mut t = b.build();
        t.attach(Addr::new(0), home);
        t.attach(Addr::new(1), home);
        t.attach(Addr::new(2), slow_site);
        let mut net = FlowNet::new(t);
        let mut rng = DetRng::seed(0);
        let slow = net
            .start_flow(SimTime::ZERO, Addr::new(0), Addr::new(2), 200, &mut rng)
            .unwrap();
        let fast = net
            .start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), 800, &mut rng)
            .unwrap();
        let done = drain(&mut net);
        // Both finish at exactly 1 s: 200 at 200 B/s and 800 at 800 B/s.
        assert_eq!(done.len(), 2);
        assert!(done
            .iter()
            .any(|&(f, at)| f == slow && at == SimTime::from_secs(1)));
        assert!(done
            .iter()
            .any(|&(f, at)| f == fast && at == SimTime::from_secs(1)));
    }

    #[test]
    fn setup_cost_delays_first_byte() {
        let mut b = Topology::builder();
        let lan = b.segment("lan", 1_000.0);
        let home = b.site("home");
        let mut p = TcpProfile::constant_rate(1_000.0);
        p.setup = Duration::from_secs(1);
        b.route(
            home,
            home,
            vec![lan],
            LatencyModel {
                base: Duration::from_millis(1),
                jitter: 0.0,
            },
            p,
            1.0,
            0.0,
        );
        let mut t = b.build();
        t.attach(Addr::new(0), home);
        t.attach(Addr::new(1), home);
        let mut net = FlowNet::new(t);
        let mut rng = DetRng::seed(0);
        net.start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), 1_000, &mut rng)
            .unwrap();
        let done = drain(&mut net);
        assert_eq!(done[0].1, SimTime::from_secs(2));
    }

    #[test]
    fn no_route_is_an_error() {
        let mut net = FlowNet::new(topo(1.0, 1.0));
        let mut rng = DetRng::seed(0);
        let err = net
            .start_flow(SimTime::ZERO, Addr::new(0), Addr::new(99), 10, &mut rng)
            .unwrap_err();
        assert!(matches!(err, NetError::NoRoute { .. }));
        assert!(err.to_string().contains("no route"));
    }

    #[test]
    fn cancel_removes_flow() {
        let mut net = FlowNet::new(topo(1_000.0, 1_000.0));
        let mut rng = DetRng::seed(0);
        let id = net
            .start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), 10_000, &mut rng)
            .unwrap();
        assert_eq!(net.in_flight(), 1);
        assert!(net.cancel(id));
        assert!(!net.cancel(id));
        assert_eq!(net.in_flight(), 0);
        assert!(net.next_event().is_none());
    }

    #[test]
    fn progress_reports_rate_and_bytes() {
        let mut net = FlowNet::new(topo(1_000.0, 1_000.0));
        let mut rng = DetRng::seed(0);
        let id = net
            .start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), 2_000, &mut rng)
            .unwrap();
        net.next_event();
        net.advance(SimTime::from_millis(500));
        let p = net.progress(id).unwrap();
        assert!((p.sent_bytes - 500.0).abs() < 1.0, "{p:?}");
        assert_eq!(p.total_bytes, 2_000);
        assert!((p.rate_bps - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn ramping_flow_completes_later_than_constant_rate() {
        let mut b = Topology::builder();
        let lan = b.segment("lan", 10_000.0);
        let home = b.site("home");
        let ramping = TcpProfile {
            setup: Duration::ZERO,
            rate_floor_bps: 100.0,
            ramp_bps_per_sec: 100.0,
            ramp_step: Duration::from_millis(250),
            rate_cap_bps: 1_000.0,
            sustained: None,
        };
        b.route(
            home,
            home,
            vec![lan],
            LatencyModel {
                base: Duration::from_millis(1),
                jitter: 0.0,
            },
            ramping.clone(),
            1.0,
            0.0,
        );
        let mut t = b.build();
        t.attach(Addr::new(0), home);
        t.attach(Addr::new(1), home);
        let mut net = FlowNet::new(t);
        let mut rng = DetRng::seed(0);
        net.start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), 5_000, &mut rng)
            .unwrap();
        let done = drain(&mut net);
        let at = done[0].1;
        // Oracle: the analytic single-flow model must agree with the engine.
        let oracle = ramping.transfer_time(5_000, 10_000.0, 1.0);
        let diff = at.as_secs_f64() - oracle.as_secs_f64();
        assert!(diff.abs() < 0.01, "engine {at} vs oracle {oracle:?}");
        // And it must be slower than a constant-rate 1000 B/s flow (5 s).
        assert!(at > SimTime::from_secs(5));
    }

    #[test]
    fn sustained_threshold_slows_large_transfer() {
        let mut b = Topology::builder();
        let lan = b.segment("lan", 10_000.0);
        let home = b.site("home");
        let p = TcpProfile {
            setup: Duration::ZERO,
            rate_floor_bps: 1_000.0,
            ramp_bps_per_sec: 0.0,
            ramp_step: Duration::from_secs(1),
            rate_cap_bps: 1_000.0,
            sustained: Some(crate::tcp::SustainedCap {
                threshold_bytes: 1_000,
                rate_bps: 100.0,
            }),
        };
        b.route(
            home,
            home,
            vec![lan],
            LatencyModel {
                base: Duration::from_millis(1),
                jitter: 0.0,
            },
            p,
            1.0,
            0.0,
        );
        let mut t = b.build();
        t.attach(Addr::new(0), home);
        t.attach(Addr::new(1), home);
        let mut net = FlowNet::new(t);
        let mut rng = DetRng::seed(0);
        net.start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), 2_000, &mut rng)
            .unwrap();
        let done = drain(&mut net);
        // 1000 B at 1000 B/s = 1 s, then 1000 B at 100 B/s = 10 s.
        assert_eq!(done[0].1, SimTime::from_secs(11));
    }

    #[test]
    fn chunked_transfer_completes_as_one_event_with_all_bytes() {
        // Per-flow cap 500 on a 2000 B/s segment: a single 4000-byte flow
        // takes 8 s, but four 1000-byte chunks with window 4 share the
        // segment at 500 B/s each and land together at 2 s.
        let mut net = FlowNet::new(topo(2_000.0, 500.0));
        let mut rng = DetRng::seed(0);
        let id = net
            .start_transfer(
                SimTime::ZERO,
                Addr::new(0),
                Addr::new(1),
                4_000,
                Some(ChunkSpec {
                    chunk_bytes: 1_000,
                    window: 4,
                }),
                &mut rng,
            )
            .unwrap();
        assert_eq!(net.in_flight(), 1);
        let done = drain(&mut net);
        assert_eq!(done, vec![(id, SimTime::from_secs(2))]);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn chunk_pipeline_refills_the_window() {
        // 6 chunks, window 2, per-flow cap 500, segment 1000: two chunks at
        // 500 each finish every 2 s -> three waves, 6 s total.
        let mut net = FlowNet::new(topo(1_000.0, 500.0));
        let mut rng = DetRng::seed(0);
        let id = net
            .start_transfer(
                SimTime::ZERO,
                Addr::new(0),
                Addr::new(1),
                6_000,
                Some(ChunkSpec {
                    chunk_bytes: 1_000,
                    window: 2,
                }),
                &mut rng,
            )
            .unwrap();
        let done = drain(&mut net);
        assert_eq!(done, vec![(id, SimTime::from_secs(6))]);
    }

    #[test]
    fn small_transfer_is_not_chunked() {
        let mut net = FlowNet::new(topo(1_000.0, 1_000.0));
        let mut rng = DetRng::seed(0);
        net.start_transfer(
            SimTime::ZERO,
            Addr::new(0),
            Addr::new(1),
            800,
            Some(ChunkSpec {
                chunk_bytes: 1_000,
                window: 4,
            }),
            &mut rng,
        )
        .unwrap();
        // One ordinary flow, no transfer facade.
        assert_eq!(net.in_flight(), 1);
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn cancel_chunked_transfer_removes_all_chunks() {
        let mut net = FlowNet::new(topo(1_000.0, 500.0));
        let mut rng = DetRng::seed(0);
        let id = net
            .start_transfer(
                SimTime::ZERO,
                Addr::new(0),
                Addr::new(1),
                10_000,
                Some(ChunkSpec {
                    chunk_bytes: 1_000,
                    window: 3,
                }),
                &mut rng,
            )
            .unwrap();
        net.next_event();
        net.advance(SimTime::from_secs(1));
        assert!(net.cancel(id));
        assert!(!net.cancel(id));
        assert_eq!(net.in_flight(), 0);
        assert!(net.next_event().is_none());
    }

    #[test]
    fn chunked_progress_aggregates_live_chunks() {
        let mut net = FlowNet::new(topo(1_000.0, 500.0));
        let mut rng = DetRng::seed(0);
        let id = net
            .start_transfer(
                SimTime::ZERO,
                Addr::new(0),
                Addr::new(1),
                4_000,
                Some(ChunkSpec {
                    chunk_bytes: 1_000,
                    window: 2,
                }),
                &mut rng,
            )
            .unwrap();
        net.next_event();
        net.advance(SimTime::from_secs(1));
        let p = net.progress(id).unwrap();
        // Two live chunks at 500 B/s each for 1 s.
        assert!((p.sent_bytes - 1_000.0).abs() < 1.0, "{p:?}");
        assert_eq!(p.total_bytes, 4_000);
        assert!((p.rate_bps - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn advance_to_intermediate_time_accrues_partial_progress() {
        let mut net = FlowNet::new(topo(1_000.0, 1_000.0));
        let mut rng = DetRng::seed(0);
        let id = net
            .start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), 10_000, &mut rng)
            .unwrap();
        net.next_event();
        assert!(net.advance(SimTime::from_secs(3)).is_empty());
        let p = net.progress(id).unwrap();
        assert!((p.sent_bytes - 3_000.0).abs() < 1.0);
    }
}
