//! Differential oracle for the timer-wheel event queue.
//!
//! Every test drives the production [`EventQueue`] (slab-backed
//! hierarchical timer wheel) and both reference engines — [`RefQueue`]
//! (the pre-wheel `BinaryHeap` implementation) and [`InlineWheel`] (the
//! first-generation payload-inline wheel), kept verbatim in
//! `queue::reference` — with the *same* operation sequence and demands
//! bit-identical observable state after every single step: pop results, clock, length, and peek. The generated
//! sequences deliberately stress the wheel's hard cases — same-tick tie
//! storms, zero-delay re-arming from inside the pop loop, delays spanning
//! ten orders of magnitude (cross-level cascades), and `advance_to`
//! jumps across long empty slot runs.

use std::time::Duration;

use c4h_simnet::queue::reference::{InlineWheel, RefQueue};
use c4h_simnet::{EventQueue, SimTime};
use proptest::prelude::*;

/// One scripted queue operation. Payloads are the op index, so any
/// ordering divergence is visible in the popped value, not just its
/// timestamp.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + delay_ns`.
    Schedule { delay_ns: u64 },
    /// Pop one event (no-op on an empty queue).
    Pop,
    /// Advance the clock a fraction of the way to the next pending event
    /// (or by `fallback_ns` when idle) — always legal, never past an
    /// event.
    Advance { permille: u16, fallback_ns: u64 },
}

/// Delays spanning ten orders of magnitude with a heavy bias toward
/// exact ties (zero) and small values: ties exercise seq ordering, large
/// values exercise high wheel levels and cascades.
fn delay_strategy() -> impl Strategy<Value = u64> {
    (0u32..34, any::<u64>(), 0u8..5).prop_map(
        |(shift, raw, tie)| {
            if tie == 0 {
                0
            } else {
                raw % (1u64 << shift)
            }
        },
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shim's `prop_oneof!` is unweighted; repeating arms biases the
    // mix toward schedules (~1/2) and pops (~1/3) over advances (~1/6).
    prop_oneof![
        delay_strategy().prop_map(|delay_ns| Op::Schedule { delay_ns }),
        delay_strategy().prop_map(|delay_ns| Op::Schedule { delay_ns }),
        delay_strategy().prop_map(|delay_ns| Op::Schedule { delay_ns }),
        Just(Op::Pop),
        Just(Op::Pop),
        (0u16..=1000, 0u64..1_000_000_000).prop_map(|(permille, fallback_ns)| {
            Op::Advance {
                permille,
                fallback_ns,
            }
        }),
    ]
}

/// Applies one op to both queues, asserting identical observable state
/// afterwards. `seq` numbers the payloads.
fn apply_and_compare(
    wheel: &mut EventQueue<u64>,
    inline: &mut InlineWheel<u64>,
    oracle: &mut RefQueue<u64>,
    op: Op,
    seq: u64,
) -> Result<(), TestCaseError> {
    match op {
        Op::Schedule { delay_ns } => {
            let d = Duration::from_nanos(delay_ns);
            wheel.schedule_in(d, seq);
            inline.schedule_in(d, seq);
            oracle.schedule_in(d, seq);
        }
        Op::Pop => {
            let got = wheel.pop();
            prop_assert_eq!(got, oracle.pop());
            prop_assert_eq!(got, inline.pop());
        }
        Op::Advance {
            permille,
            fallback_ns,
        } => {
            // A target that is always legal: at most the next pending
            // instant, at least the current clock.
            let now = oracle.now().as_nanos();
            let target = match oracle.peek_time() {
                Some(t) => now + (t.as_nanos() - now) / 1000 * permille as u64,
                None => now.saturating_add(fallback_ns),
            };
            let target = SimTime::from_nanos(target);
            wheel.advance_to(target);
            inline.advance_to(target);
            oracle.advance_to(target);
        }
    }
    prop_assert_eq!(wheel.now(), oracle.now());
    prop_assert_eq!(wheel.len(), oracle.len());
    prop_assert_eq!(wheel.is_empty(), oracle.is_empty());
    prop_assert_eq!(wheel.peek_time(), oracle.peek_time());
    prop_assert_eq!(inline.now(), oracle.now());
    prop_assert_eq!(inline.len(), oracle.len());
    prop_assert_eq!(inline.peek_time(), oracle.peek_time());
    Ok(())
}

/// Fully drains both queues in lockstep.
fn drain_and_compare(
    wheel: &mut EventQueue<u64>,
    inline: &mut InlineWheel<u64>,
    oracle: &mut RefQueue<u64>,
) -> Result<(), TestCaseError> {
    loop {
        let a = wheel.pop();
        let b = oracle.pop();
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, inline.pop());
        prop_assert_eq!(wheel.now(), oracle.now());
        if a.is_none() {
            return Ok(());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The main differential property: arbitrary interleaved
    /// schedule/pop/advance sequences leave the wheel and the heap oracle
    /// in identical observable states at every step, and the final drains
    /// agree event-for-event.
    #[test]
    fn wheel_equals_reference_on_any_sequence(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut inline = InlineWheel::new();
        let mut oracle = RefQueue::new();
        for (seq, &op) in ops.iter().enumerate() {
            apply_and_compare(&mut wheel, &mut inline, &mut oracle, op, seq as u64)?;
        }
        drain_and_compare(&mut wheel, &mut inline, &mut oracle)?;
    }

    /// Tie storms: many events on few distinct instants must pop in exact
    /// insertion order — the seq tiebreak is the byte-determinism
    /// contract's foundation.
    #[test]
    fn same_tick_ties_pop_in_insertion_order(
        instants in proptest::collection::vec(0u64..50, 20..200),
    ) {
        let mut wheel = EventQueue::new();
        let mut inline = InlineWheel::new();
        let mut oracle = RefQueue::new();
        for (seq, &i) in instants.iter().enumerate() {
            // Few distinct timestamps → long tie runs at each.
            let at = SimTime::from_nanos(i * 1000);
            wheel.schedule_at(at, seq as u64);
            inline.schedule_at(at, seq as u64);
            oracle.schedule_at(at, seq as u64);
        }
        let mut last: Option<(SimTime, u64)> = None;
        loop {
            let a = wheel.pop();
            prop_assert_eq!(a, oracle.pop());
            prop_assert_eq!(a, inline.pop());
            let Some((t, seq)) = a else { break };
            if let Some((lt, lseq)) = last {
                prop_assert!(t > lt || (t == lt && seq > lseq),
                    "(at, seq) order violated: ({t}, {seq}) after ({lt}, {lseq})");
            }
            last = Some((t, seq));
        }
    }

    /// Zero-delay self-rescheduling: an event that re-arms itself at the
    /// current instant during its own delivery must land *after* everything
    /// already queued at that instant, on both engines, and the chain must
    /// terminate identically.
    #[test]
    fn zero_delay_rearm_matches_reference(
        initial in proptest::collection::vec(0u64..1000, 1..30),
        rearms in 1u8..10,
    ) {
        let mut wheel = EventQueue::new();
        let mut inline = InlineWheel::new();
        let mut oracle = RefQueue::new();
        for (seq, &ns) in initial.iter().enumerate() {
            let at = SimTime::from_nanos(ns);
            wheel.schedule_at(at, seq as u64);
            inline.schedule_at(at, seq as u64);
            oracle.schedule_at(at, seq as u64);
        }
        let mut seq = initial.len() as u64;
        let mut budget = rearms as u64;
        loop {
            let a = wheel.pop();
            prop_assert_eq!(a, oracle.pop());
            prop_assert_eq!(a, inline.pop());
            prop_assert_eq!(wheel.now(), oracle.now());
            let Some(_) = a else { break };
            if budget > 0 {
                budget -= 1;
                // Re-arm at the instant being delivered.
                wheel.schedule_in(Duration::ZERO, seq);
                inline.schedule_in(Duration::ZERO, seq);
                oracle.schedule_in(Duration::ZERO, seq);
                seq += 1;
                prop_assert_eq!(wheel.peek_time(), oracle.peek_time());
            }
        }
    }

    /// `advance_to` across long empty stretches (the wheel's empty-slot
    /// scan + lazy re-leveling path), interleaved with far-apart events.
    #[test]
    fn advance_over_empty_slots_matches_reference(
        gaps in proptest::collection::vec((1u64..u64::MAX / 64, 0u16..=1000), 1..40),
    ) {
        let mut wheel = EventQueue::new();
        let mut inline = InlineWheel::new();
        let mut oracle = RefQueue::new();
        let mut seq = 0u64;
        for &(gap, permille) in &gaps {
            // One event far out, then jump partway toward it.
            let at = SimTime::from_nanos(
                oracle.now().as_nanos().saturating_add(gap),
            );
            wheel.schedule_at(at, seq);
            inline.schedule_at(at, seq);
            oracle.schedule_at(at, seq);
            seq += 1;
            apply_and_compare(
                &mut wheel,
                &mut inline,
                &mut oracle,
                Op::Advance { permille, fallback_ns: 0 },
                seq,
            )?;
            // Sometimes consume it, sometimes leave it pending so the next
            // gap stacks more levels.
            if permille % 2 == 0 {
                let got = wheel.pop();
                prop_assert_eq!(got, oracle.pop());
                prop_assert_eq!(got, inline.pop());
            }
        }
        drain_and_compare(&mut wheel, &mut inline, &mut oracle)?;
    }
}
