//! Property tests for the flow engine: the event-driven simulation must
//! agree with the analytic single-flow oracle, conserve bytes, and respect
//! capacity under contention.

use std::time::Duration;

use c4h_simnet::{
    Addr, DetRng, FlowNet, LatencyModel, SegmentId, SimTime, SustainedCap, TcpProfile, Topology,
};
use proptest::prelude::*;

fn topology(seg_cap: f64, tcp: TcpProfile) -> Topology {
    let mut b = Topology::builder();
    let lan = b.segment("seg", seg_cap);
    let site = b.site("site");
    b.route(
        site,
        site,
        vec![lan],
        LatencyModel {
            base: Duration::from_millis(1),
            jitter: 0.0,
        },
        tcp,
        1.0,
        0.0,
    );
    let mut t = b.build();
    for i in 0..16 {
        t.attach(Addr::new(i), site);
    }
    t
}

fn drain_completion_times(net: &mut FlowNet) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut guard = 0;
    while let Some(t) = net.next_event() {
        guard += 1;
        assert!(guard < 1_000_000, "flow engine failed to converge");
        for ev in net.advance(t) {
            let c4h_simnet::FlowEvent::Completed { at, .. } = ev;
            out.push(at);
        }
    }
    out
}

fn profile_strategy() -> impl Strategy<Value = TcpProfile> {
    (
        0u64..2000,                                        // setup ms
        1.0e3..1.0e7f64,                                   // floor bps
        0.0..1.0e6f64,                                     // ramp bps/s
        50u64..2000,                                       // ramp step ms
        1.0e4..2.0e7f64,                                   // cap bps
        proptest::option::of((1u64..64, 1.0e3..1.0e6f64)), // sustained
    )
        .prop_map(|(setup_ms, floor, ramp, step_ms, cap, sustained)| {
            let cap = cap.max(floor); // cap at least the floor
            TcpProfile {
                setup: Duration::from_millis(setup_ms),
                rate_floor_bps: floor,
                ramp_bps_per_sec: ramp,
                ramp_step: Duration::from_millis(step_ms),
                rate_cap_bps: cap,
                sustained: sustained.map(|(mb, rate)| SustainedCap {
                    threshold_bytes: mb << 20,
                    rate_bps: rate,
                }),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A lone flow's engine completion time matches the analytic oracle.
    #[test]
    fn engine_matches_analytic_oracle(
        profile in profile_strategy(),
        kib in 1u64..(64 << 10),
        seg_cap in 1.0e4..5.0e7f64,
    ) {
        let bytes = kib << 10;
        let oracle = profile.transfer_time(bytes, seg_cap, 1.0);
        let mut net = FlowNet::new(topology(seg_cap, profile));
        let mut rng = DetRng::seed(1);
        net.start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), bytes, &mut rng)
            .unwrap();
        let done = drain_completion_times(&mut net);
        prop_assert_eq!(done.len(), 1);
        let engine = done[0].as_secs_f64();
        let oracle = oracle.as_secs_f64();
        let tolerance = (oracle * 0.02).max(0.002);
        prop_assert!(
            (engine - oracle).abs() <= tolerance,
            "engine {engine:.4}s vs oracle {oracle:.4}s"
        );
    }

    /// N identical concurrent flows never finish before bytes/capacity
    /// allows, and all complete.
    #[test]
    fn contention_respects_segment_capacity(
        n in 2usize..8,
        kib in 8u64..1024,
        seg_cap in 1.0e4..1.0e6f64,
    ) {
        let bytes = kib << 10;
        let profile = TcpProfile::constant_rate(2.0 * seg_cap); // segment-limited
        let mut net = FlowNet::new(topology(seg_cap, profile));
        let mut rng = DetRng::seed(2);
        for i in 0..n {
            net.start_flow(
                SimTime::ZERO,
                Addr::new(i as u64),
                Addr::new((i + 8) as u64),
                bytes,
                &mut rng,
            )
            .unwrap();
        }
        let done = drain_completion_times(&mut net);
        prop_assert_eq!(done.len(), n);
        let last = done.iter().max().unwrap().as_secs_f64();
        let floor = (n as f64 * bytes as f64) / seg_cap;
        prop_assert!(
            last >= floor * 0.999,
            "finished at {last:.4}s, but {floor:.4}s of capacity-seconds are required"
        );
        // Identical symmetric flows finish together.
        let first = done.iter().min().unwrap().as_secs_f64();
        prop_assert!((last - first).abs() < 1e-6);
    }

    /// The progressive-filling allocation is max-min fair: no segment is
    /// ever driven above its capacity, and any flow held below its own rate
    /// cap is bottlenecked on some saturated segment of its path where no
    /// competing flow gets more than it does.
    #[test]
    fn allocation_is_max_min_fair(
        n_ab in 0usize..4,
        n_bc in 0usize..4,
        n_ac in 1usize..4,
        cap_ab in 1.0e4..1.0e6f64,
        cap_bc in 1.0e4..1.0e6f64,
        rate_ab in 1.0e4..1.0e6f64,
        rate_bc in 1.0e4..1.0e6f64,
        rate_ac in 1.0e4..1.0e6f64,
    ) {
        // A chain A —ab— B —bc— C; the A→C route crosses both segments and
        // competes with local traffic on each.
        let lat = LatencyModel { base: Duration::from_millis(1), jitter: 0.0 };
        let mut b = Topology::builder();
        let ab = b.segment("ab", cap_ab);
        let bc = b.segment("bc", cap_bc);
        let (sa, sb, sc) = (b.site("a"), b.site("b"), b.site("c"));
        b.route(sa, sb, vec![ab], lat, TcpProfile::constant_rate(rate_ab), 1.0, 0.0);
        b.route(sb, sc, vec![bc], lat, TcpProfile::constant_rate(rate_bc), 1.0, 0.0);
        b.route(sa, sc, vec![ab, bc], lat, TcpProfile::constant_rate(rate_ac), 1.0, 0.0);
        let mut t = b.build();
        for i in 0..8 {
            t.attach(Addr::new(i), sa);
            t.attach(Addr::new(8 + i), sb);
            t.attach(Addr::new(16 + i), sc);
        }

        let mut net = FlowNet::new(t);
        let mut rng = DetRng::seed(4);
        let bytes = 64 << 20; // large enough that nothing completes early
        for i in 0..n_ab as u64 {
            net.start_flow(SimTime::ZERO, Addr::new(i), Addr::new(8 + i), bytes, &mut rng).unwrap();
        }
        for i in 0..n_bc as u64 {
            net.start_flow(SimTime::ZERO, Addr::new(8 + i), Addr::new(16 + i), bytes, &mut rng).unwrap();
        }
        for i in 0..n_ac as u64 {
            net.start_flow(SimTime::ZERO, Addr::new(i), Addr::new(16 + i), bytes, &mut rng).unwrap();
        }
        net.next_event(); // forces the rate allocation

        let flows = net.flow_ids();
        let rate = |id| net.progress(id).unwrap().rate_bps;
        let on_seg = |id, seg: SegmentId| net.flow_path(id).unwrap().contains(&seg);
        let seg_load = |seg: SegmentId| -> f64 {
            flows.iter().filter(|&&f| on_seg(f, seg)).map(|&f| rate(f)).sum()
        };

        // No segment above capacity.
        for (seg, cap) in [(ab, cap_ab), (bc, cap_bc)] {
            prop_assert!(
                seg_load(seg) <= cap * 1.001,
                "segment {} over capacity: {} > {}", net.topology().segment(seg).name(),
                seg_load(seg), cap
            );
        }

        // Every cap-limited flow gets its cap; every other flow has a
        // saturated bottleneck segment where it is no worse off than any
        // competitor.
        for &f in &flows {
            let cap = net.flow_cap(f).unwrap();
            let r = rate(f);
            prop_assert!(r <= cap * 1.001, "flow rate {r} exceeds its cap {cap}");
            if r >= cap * 0.999 {
                continue;
            }
            let path = net.flow_path(f).unwrap().to_vec();
            let bottleneck = path.iter().find(|&&seg| {
                let seg_cap = net.topology().segment(seg).capacity_bps();
                seg_load(seg) >= seg_cap * 0.999
                    && flows.iter().all(|&g| !on_seg(g, seg) || rate(g) <= r * 1.001)
            });
            prop_assert!(
                bottleneck.is_some(),
                "flow below its cap ({r} < {cap}) has no max-min bottleneck"
            );
        }
    }

    /// Progress accounting conserves bytes at arbitrary intermediate times.
    #[test]
    fn partial_progress_never_exceeds_totals(
        kib in 8u64..4096,
        cut_ms in 1u64..10_000,
    ) {
        let bytes = kib << 10;
        let profile = TcpProfile::constant_rate(100_000.0);
        let mut net = FlowNet::new(topology(1.0e9, profile));
        let mut rng = DetRng::seed(3);
        let id = net
            .start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), bytes, &mut rng)
            .unwrap();
        net.next_event();
        net.advance(SimTime::from_millis(cut_ms));
        if let Some(p) = net.progress(id) {
            prop_assert!(p.sent_bytes <= p.total_bytes as f64 + 1.0);
            let expected = (100_000.0 * cut_ms as f64 / 1e3).min(bytes as f64);
            prop_assert!(
                (p.sent_bytes - expected).abs() < 120.0,
                "sent {} vs expected {expected}",
                p.sent_bytes
            );
        }
    }
}
