//! Property tests for the flow engine: the event-driven simulation must
//! agree with the analytic single-flow oracle, conserve bytes, and respect
//! capacity under contention.

use std::time::Duration;

use c4h_simnet::{
    Addr, DetRng, FlowNet, LatencyModel, SimTime, SustainedCap, TcpProfile, Topology,
};
use proptest::prelude::*;

fn topology(seg_cap: f64, tcp: TcpProfile) -> Topology {
    let mut b = Topology::builder();
    let lan = b.segment("seg", seg_cap);
    let site = b.site("site");
    b.route(
        site,
        site,
        vec![lan],
        LatencyModel {
            base: Duration::from_millis(1),
            jitter: 0.0,
        },
        tcp,
        1.0,
        0.0,
    );
    let mut t = b.build();
    for i in 0..16 {
        t.attach(Addr::new(i), site);
    }
    t
}

fn drain_completion_times(net: &mut FlowNet) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut guard = 0;
    while let Some(t) = net.next_event() {
        guard += 1;
        assert!(guard < 1_000_000, "flow engine failed to converge");
        for ev in net.advance(t) {
            let c4h_simnet::FlowEvent::Completed { at, .. } = ev;
            out.push(at);
        }
    }
    out
}

fn profile_strategy() -> impl Strategy<Value = TcpProfile> {
    (
        0u64..2000,                                        // setup ms
        1.0e3..1.0e7f64,                                   // floor bps
        0.0..1.0e6f64,                                     // ramp bps/s
        50u64..2000,                                       // ramp step ms
        1.0e4..2.0e7f64,                                   // cap bps
        proptest::option::of((1u64..64, 1.0e3..1.0e6f64)), // sustained
    )
        .prop_map(|(setup_ms, floor, ramp, step_ms, cap, sustained)| {
            let cap = cap.max(floor); // cap at least the floor
            TcpProfile {
                setup: Duration::from_millis(setup_ms),
                rate_floor_bps: floor,
                ramp_bps_per_sec: ramp,
                ramp_step: Duration::from_millis(step_ms),
                rate_cap_bps: cap,
                sustained: sustained.map(|(mb, rate)| SustainedCap {
                    threshold_bytes: mb << 20,
                    rate_bps: rate,
                }),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A lone flow's engine completion time matches the analytic oracle.
    #[test]
    fn engine_matches_analytic_oracle(
        profile in profile_strategy(),
        kib in 1u64..(64 << 10),
        seg_cap in 1.0e4..5.0e7f64,
    ) {
        let bytes = kib << 10;
        let oracle = profile.transfer_time(bytes, seg_cap, 1.0);
        let mut net = FlowNet::new(topology(seg_cap, profile));
        let mut rng = DetRng::seed(1);
        net.start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), bytes, &mut rng)
            .unwrap();
        let done = drain_completion_times(&mut net);
        prop_assert_eq!(done.len(), 1);
        let engine = done[0].as_secs_f64();
        let oracle = oracle.as_secs_f64();
        let tolerance = (oracle * 0.02).max(0.002);
        prop_assert!(
            (engine - oracle).abs() <= tolerance,
            "engine {engine:.4}s vs oracle {oracle:.4}s"
        );
    }

    /// N identical concurrent flows never finish before bytes/capacity
    /// allows, and all complete.
    #[test]
    fn contention_respects_segment_capacity(
        n in 2usize..8,
        kib in 8u64..1024,
        seg_cap in 1.0e4..1.0e6f64,
    ) {
        let bytes = kib << 10;
        let profile = TcpProfile::constant_rate(2.0 * seg_cap); // segment-limited
        let mut net = FlowNet::new(topology(seg_cap, profile));
        let mut rng = DetRng::seed(2);
        for i in 0..n {
            net.start_flow(
                SimTime::ZERO,
                Addr::new(i as u64),
                Addr::new((i + 8) as u64),
                bytes,
                &mut rng,
            )
            .unwrap();
        }
        let done = drain_completion_times(&mut net);
        prop_assert_eq!(done.len(), n);
        let last = done.iter().max().unwrap().as_secs_f64();
        let floor = (n as f64 * bytes as f64) / seg_cap;
        prop_assert!(
            last >= floor * 0.999,
            "finished at {last:.4}s, but {floor:.4}s of capacity-seconds are required"
        );
        // Identical symmetric flows finish together.
        let first = done.iter().min().unwrap().as_secs_f64();
        prop_assert!((last - first).abs() < 1e-6);
    }

    /// Progress accounting conserves bytes at arbitrary intermediate times.
    #[test]
    fn partial_progress_never_exceeds_totals(
        kib in 8u64..4096,
        cut_ms in 1u64..10_000,
    ) {
        let bytes = kib << 10;
        let profile = TcpProfile::constant_rate(100_000.0);
        let mut net = FlowNet::new(topology(1.0e9, profile));
        let mut rng = DetRng::seed(3);
        let id = net
            .start_flow(SimTime::ZERO, Addr::new(0), Addr::new(1), bytes, &mut rng)
            .unwrap();
        net.next_event();
        net.advance(SimTime::from_millis(cut_ms));
        if let Some(p) = net.progress(id) {
            prop_assert!(p.sent_bytes <= p.total_bytes as f64 + 1.0);
            let expected = (100_000.0 * cut_ms as f64 / 1e3).min(bytes as f64);
            prop_assert!(
                (p.sent_bytes - expected).abs() < 120.0,
                "sent {} vs expected {expected}",
                p.sent_bytes
            );
        }
    }
}
