//! Property-based tests for the overlay's core data structures and
//! invariants.

use std::collections::BTreeMap;

use c4h_chimera::{root_of, ChimeraConfig, ChimeraNode, Key, OverwritePolicy, RbTree};
use c4h_simnet::SimTime;
use proptest::prelude::*;

/// Model-based operations applied to both the red-black tree and a
/// `BTreeMap` oracle.
#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::Get(k % 512)),
    ]
}

proptest! {
    #[test]
    fn rbtree_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 0..400)) {
        let mut tree = RbTree::new();
        let mut model = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k));
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        let tree_pairs: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let model_pairs: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(tree_pairs, model_pairs);
    }

    #[test]
    fn rbtree_neighbors_match_model(keys in proptest::collection::btree_set(any::<u32>(), 1..100), probe in any::<u32>()) {
        let tree: RbTree<u32, ()> = keys.iter().map(|&k| (k, ())).collect();
        let after = keys.range((probe + 1)..).next().copied();
        let before = keys.range(..probe).next_back().copied();
        prop_assert_eq!(tree.next_after(&probe).map(|(k, _)| *k), after);
        prop_assert_eq!(tree.prev_before(&probe).map(|(k, _)| *k), before);
    }

    #[test]
    fn ring_distance_is_symmetric_and_bounded(a in any::<u64>(), b in any::<u64>()) {
        let a = Key::from_raw(a);
        let b = Key::from_raw(b);
        prop_assert_eq!(a.ring_distance(b), b.ring_distance(a));
        prop_assert!(a.ring_distance(b) <= (1u64 << 39));
        prop_assert_eq!(a.ring_distance(a), 0);
    }

    #[test]
    fn clockwise_distances_sum_to_ring_size(a in any::<u64>(), b in any::<u64>()) {
        let a = Key::from_raw(a);
        let b = Key::from_raw(b);
        prop_assume!(a != b);
        let total = a.clockwise_distance(b) + b.clockwise_distance(a);
        prop_assert_eq!(total, 1u64 << 40);
    }

    #[test]
    fn shared_prefix_is_symmetric_and_consistent_with_digits(a in any::<u64>(), b in any::<u64>()) {
        let a = Key::from_raw(a);
        let b = Key::from_raw(b);
        let p = a.shared_prefix_len(b);
        prop_assert_eq!(p, b.shared_prefix_len(a));
        for i in 0..p {
            prop_assert_eq!(a.digit(i), b.digit(i));
        }
        if p < c4h_chimera::KEY_DIGITS {
            prop_assert_ne!(a.digit(p), b.digit(p));
        }
    }

    #[test]
    fn root_selection_is_unique_and_stable(
        nodes in proptest::collection::btree_set(any::<u64>(), 1..40),
        key in any::<u64>(),
    ) {
        let nodes: Vec<Key> = nodes.into_iter().map(Key::from_raw).collect();
        let key = Key::from_raw(key);
        let root = root_of(key, nodes.iter().copied()).unwrap();
        // The root is a member and no other member is strictly closer.
        prop_assert!(nodes.contains(&root));
        for &n in &nodes {
            prop_assert!(!n.closer_to(key, root), "{n} beats chosen root {root}");
        }
        // Shuffling candidate order does not change the winner.
        let mut rev = nodes.clone();
        rev.reverse();
        prop_assert_eq!(root_of(key, rev.into_iter()), Some(root));
    }

    #[test]
    fn dht_stores_and_serves_arbitrary_bytes(
        names in proptest::collection::vec("[a-z]{1,12}", 1..20),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let now = SimTime::ZERO;
        let mut nodes: Vec<ChimeraNode> = (0..5)
            .map(|i| ChimeraNode::new(Key::from_name(&format!("p{i}")), ChimeraConfig::default()))
            .collect();
        nodes[0].bootstrap(now);
        let seed = nodes[0].id();
        for i in 1..5 {
            nodes[i].join_via(seed, now);
            pump(&mut nodes);
        }
        for name in &names {
            let key = Key::from_name(name);
            nodes[0]
                .put(key, payload.clone(), OverwritePolicy::Overwrite, now)
                .unwrap();
            pump(&mut nodes);
            nodes[3].get(key, now).unwrap();
            pump(&mut nodes);
            let mut found = false;
            while let Some(e) = nodes[3].poll_event() {
                if let c4h_chimera::DhtEvent::GetCompleted { value, .. } = e {
                    prop_assert_eq!(value.as_ref().map(|v| v.latest()), Some(payload.as_slice()));
                    found = true;
                }
            }
            prop_assert!(found);
        }
    }
}

fn pump(nodes: &mut [ChimeraNode]) {
    let now = SimTime::ZERO;
    for _ in 0..100_000 {
        let mut moved = false;
        for i in 0..nodes.len() {
            while let Some(env) = nodes[i].poll_send() {
                moved = true;
                if let Some(j) = nodes.iter().position(|n| n.id() == env.to) {
                    nodes[j].handle(env, now);
                }
            }
        }
        if !moved {
            return;
        }
    }
    panic!("cluster failed to quiesce");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Graceful churn never loses acknowledged records: after any sequence
    /// of puts interleaved with graceful leaves (keeping ≥3 nodes), every
    /// put issued while its origin was joined remains readable.
    #[test]
    fn graceful_churn_preserves_acked_records(
        put_count in 4usize..16,
        leave_picks in proptest::collection::vec(0usize..8, 0..3),
    ) {
        let now = SimTime::ZERO;
        let mut nodes: Vec<ChimeraNode> = (0..8)
            .map(|i| {
                let cfg = ChimeraConfig {
                    replication: 2,
                    ..ChimeraConfig::default()
                };
                ChimeraNode::new(Key::from_name(&format!("churn-{i}")), cfg)
            })
            .collect();
        nodes[0].bootstrap(now);
        let seed_key = nodes[0].id();
        for i in 1..8 {
            nodes[i].join_via(seed_key, now);
            pump(&mut nodes);
        }
        // Interleave puts and graceful leaves.
        let mut gone = std::collections::HashSet::new();
        let mut keys = Vec::new();
        for p in 0..put_count {
            let key = Key::from_name(&format!("churn-rec-{p}"));
            let origin = (0..8).find(|i| !gone.contains(i)).unwrap();
            nodes[origin]
                .put(key, vec![p as u8], OverwritePolicy::Overwrite, now)
                .unwrap();
            pump(&mut nodes);
            keys.push(key);
            if let Some(&pick) = leave_picks.get(p % leave_picks.len().max(1)) {
                if p < leave_picks.len() && !gone.contains(&pick) && 8 - gone.len() > 3 {
                    nodes[pick].leave(now);
                    pump(&mut nodes);
                    gone.insert(pick);
                }
            }
        }
        // Every record is still readable from a surviving node.
        let reader = (0..8).find(|i| !gone.contains(i)).unwrap();
        for (p, key) in keys.iter().enumerate() {
            nodes[reader].get(*key, now).unwrap();
            pump(&mut nodes);
            let mut value = None;
            while let Some(e) = nodes[reader].poll_event() {
                if let c4h_chimera::DhtEvent::GetCompleted { value: v, .. } = e {
                    value = v;
                }
            }
            prop_assert_eq!(
                value.as_ref().map(|v| v.latest().to_vec()),
                Some(vec![p as u8]),
                "record {} lost after churn", p
            );
        }
    }
}
