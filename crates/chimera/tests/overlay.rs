//! Integration tests driving whole overlays of [`ChimeraNode`]s through an
//! in-memory message pump (no network model — pure protocol behaviour).

use std::time::Duration;

use c4h_chimera::{
    root_of, ChimeraConfig, ChimeraNode, DhtError, DhtEvent, Key, OverwritePolicy, PutError,
};
use c4h_simnet::SimTime;

/// A cluster of overlay nodes with synchronous message delivery.
struct Cluster {
    nodes: Vec<ChimeraNode>,
    alive: Vec<bool>,
    now: SimTime,
    events: Vec<Vec<DhtEvent>>,
}

impl Cluster {
    /// Builds an `n`-node overlay: node 0 bootstraps, the rest join through
    /// it one at a time.
    fn build(n: usize, config: ChimeraConfig) -> Self {
        let ids: Vec<Key> = (0..n)
            .map(|i| Key::from_name(&format!("node-{i}")))
            .collect();
        let mut c = Cluster {
            nodes: ids
                .iter()
                .map(|&id| ChimeraNode::new(id, config.clone()))
                .collect(),
            alive: vec![true; n],
            now: SimTime::ZERO,
            events: vec![Vec::new(); n],
        };
        c.nodes[0].bootstrap(c.now);
        let seed = c.nodes[0].id();
        for i in 1..n {
            c.nodes[i].join_via(seed, c.now);
            c.pump();
        }
        c
    }

    fn ids(&self) -> Vec<Key> {
        self.nodes.iter().map(|n| n.id()).collect()
    }

    fn index_of(&self, id: Key) -> usize {
        self.nodes
            .iter()
            .position(|n| n.id() == id)
            .unwrap_or_else(|| panic!("unknown node {id}"))
    }

    /// Delivers messages until the cluster is quiescent. Messages to dead
    /// nodes vanish (simulated crash).
    fn pump(&mut self) {
        for _ in 0..100_000 {
            let mut moved = false;
            for i in 0..self.nodes.len() {
                while let Some(env) = self.nodes[i].poll_send() {
                    moved = true;
                    let j = self.index_of(env.to);
                    if self.alive[j] {
                        let now = self.now;
                        self.nodes[j].handle(env, now);
                    }
                }
            }
            if !moved {
                self.collect_events();
                return;
            }
        }
        panic!("cluster failed to quiesce");
    }

    fn collect_events(&mut self) {
        for (i, n) in self.nodes.iter_mut().enumerate() {
            while let Some(e) = n.poll_event() {
                self.events[i].push(e);
            }
        }
    }

    /// Advances virtual time in `step` increments, ticking all live nodes.
    fn run_for(&mut self, total: Duration, step: Duration) {
        let end = self.now + total;
        while self.now < end {
            self.now += step;
            for i in 0..self.nodes.len() {
                if self.alive[i] {
                    let now = self.now;
                    self.nodes[i].tick(now);
                }
            }
            self.pump();
        }
    }

    fn put(&mut self, origin: usize, key: Key, data: &[u8], policy: OverwritePolicy) {
        let now = self.now;
        self.nodes[origin]
            .put(key, data.to_vec(), policy, now)
            .unwrap();
        self.pump();
    }

    /// Issues a get and returns `(value, from_cache, hops)`.
    fn get(&mut self, origin: usize, key: Key) -> (Option<Vec<u8>>, bool, u8) {
        let now = self.now;
        let req = self.nodes[origin].get(key, now).unwrap();
        self.pump();
        for e in self.events[origin].drain(..) {
            if let DhtEvent::GetCompleted {
                req: r,
                value,
                from_cache,
                hops,
                result,
                ..
            } = e
            {
                if r == req {
                    result.unwrap();
                    return (value.map(|v| v.latest().to_vec()), from_cache, hops);
                }
            }
        }
        panic!("get did not complete");
    }

    fn last_put_result(&mut self, origin: usize) -> Result<u64, DhtError> {
        for e in self.events[origin].drain(..).rev() {
            if let DhtEvent::PutCompleted { result, .. } = e {
                return result;
            }
        }
        panic!("no put completion recorded");
    }

    fn crash(&mut self, i: usize) {
        self.alive[i] = false;
    }
}

fn cfg() -> ChimeraConfig {
    ChimeraConfig::default()
}

#[test]
fn six_node_overlay_forms_complete_view() {
    let c = Cluster::build(6, cfg());
    for n in &c.nodes {
        assert!(n.is_joined());
        assert_eq!(n.peer_keys().len(), 5, "node {} sees all peers", n.id());
    }
}

#[test]
fn put_get_roundtrip_from_every_node() {
    let mut c = Cluster::build(6, cfg());
    let keys: Vec<Key> = (0..24)
        .map(|i| Key::from_name(&format!("obj-{i}")))
        .collect();
    for (i, &k) in keys.iter().enumerate() {
        let data = format!("value-{i}");
        c.put(i % 6, k, data.as_bytes(), OverwritePolicy::Overwrite);
    }
    for (i, &k) in keys.iter().enumerate() {
        let (v, _, _) = c.get((i + 3) % 6, k);
        assert_eq!(v.unwrap(), format!("value-{i}").into_bytes());
    }
}

#[test]
fn records_land_on_the_ring_root() {
    let mut c = Cluster::build(6, cfg());
    let ids = c.ids();
    let keys: Vec<Key> = (0..40)
        .map(|i| Key::from_name(&format!("rooted-{i}")))
        .collect();
    for &k in &keys {
        c.put(0, k, b"x", OverwritePolicy::Overwrite);
    }
    for &k in &keys {
        let expected_root = root_of(k, ids.iter().copied()).unwrap();
        let root_idx = c.index_of(expected_root);
        assert!(
            c.nodes[root_idx].local_get(k).is_some(),
            "key {k} should live on its root {expected_root}"
        );
    }
}

#[test]
fn overwrite_policy_replaces_chain_appends_error_rejects() {
    let mut c = Cluster::build(4, cfg());
    let k = Key::from_name("policy-object");

    c.put(1, k, b"v1", OverwritePolicy::Overwrite);
    c.put(2, k, b"v2", OverwritePolicy::Overwrite);
    let (v, _, _) = c.get(3, k);
    assert_eq!(v.unwrap(), b"v2");

    c.put(1, k, b"v3", OverwritePolicy::Chain);
    let root = c.index_of(root_of(k, c.ids()).unwrap());
    let rec = c.nodes[root].local_get(k).unwrap();
    assert_eq!(rec.versions().len(), 2, "chain keeps both versions");
    assert_eq!(rec.latest(), b"v3");

    c.put(2, k, b"v4", OverwritePolicy::Error);
    let res = c.last_put_result(2);
    assert_eq!(res, Err(DhtError::Rejected(PutError::Exists)));
}

#[test]
fn get_missing_key_returns_none() {
    let mut c = Cluster::build(3, cfg());
    let (v, from_cache, _) = c.get(1, Key::from_name("never-stored"));
    assert_eq!(v, None);
    assert!(!from_cache);
}

#[test]
fn graceful_leave_redistributes_keys() {
    let mut c = Cluster::build(6, cfg());
    let keys: Vec<Key> = (0..30)
        .map(|i| Key::from_name(&format!("leave-{i}")))
        .collect();
    for &k in &keys {
        c.put(0, k, b"persisted", OverwritePolicy::Overwrite);
    }
    // Node 3 leaves gracefully.
    let now = c.now;
    let left_id = c.nodes[3].id();
    c.nodes[3].leave(now);
    c.pump();
    c.crash(3); // it no longer participates
    for n in c
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 3)
        .map(|(_, n)| n)
    {
        assert!(
            !n.peer_keys().contains(&left_id),
            "peers should drop the departed node"
        );
    }
    // All records remain reachable.
    for &k in &keys {
        let (v, _, _) = c.get(1, k);
        assert_eq!(v.unwrap(), b"persisted", "key {k} lost after leave");
    }
}

#[test]
fn crash_failover_serves_replicated_keys() {
    let mut config = cfg();
    config.replication = 2;
    let mut c = Cluster::build(6, config);
    let keys: Vec<Key> = (0..30)
        .map(|i| Key::from_name(&format!("crash-{i}")))
        .collect();
    for &k in &keys {
        c.put(0, k, b"replicated", OverwritePolicy::Overwrite);
    }
    // Crash a node that owns at least one key.
    let ids = c.ids();
    let victim_id = keys
        .iter()
        .map(|&k| root_of(k, ids.iter().copied()).unwrap())
        .find(|&r| r != c.nodes[0].id())
        .expect("some key rooted away from node 0");
    let victim = c.index_of(victim_id);
    c.crash(victim);

    // Let liveness detection run: ping interval 1 s, 3 misses to fail.
    c.run_for(Duration::from_secs(10), Duration::from_millis(500));
    for (i, n) in c.nodes.iter().enumerate() {
        if i != victim {
            assert!(
                !n.peer_keys().contains(&victim_id),
                "node {} still lists the crashed peer",
                n.id()
            );
        }
    }
    // Every key is still readable from a surviving node.
    let reader = (victim + 1) % 6;
    for &k in &keys {
        let (v, _, _) = c.get(reader, k);
        assert_eq!(v.unwrap(), b"replicated", "key {k} lost after crash");
    }
}

#[test]
fn join_via_dead_seed_times_out() {
    let mut node = ChimeraNode::new(Key::from_name("lonely"), cfg());
    node.join_via(Key::from_name("ghost-seed"), SimTime::ZERO);
    while node.poll_send().is_some() {}
    node.tick(SimTime::from_secs(10));
    let mut saw_failure = false;
    while let Some(e) = node.poll_event() {
        if matches!(e, DhtEvent::JoinFailed) {
            saw_failure = true;
        }
    }
    assert!(saw_failure);
    assert!(!node.is_joined());
}

#[test]
fn request_to_crashed_root_times_out() {
    let mut c = Cluster::build(4, cfg());
    let k = Key::from_name("orphan-key");
    let ids = c.ids();
    let root = c.index_of(root_of(k, ids.iter().copied()).unwrap());
    let origin = (root + 1) % 4;
    c.crash(root);
    // Issue the get before anyone notices the crash.
    let now = c.now;
    let req = c.nodes[origin].get(k, now).unwrap();
    c.pump();
    c.run_for(Duration::from_secs(5), Duration::from_secs(1));
    let timed_out = c.events[origin].iter().any(|e| {
        matches!(
            e,
            DhtEvent::GetCompleted { req: r, result: Err(DhtError::Timeout), .. } if *r == req
        )
    });
    assert!(timed_out, "expected a timeout completion");
}

#[test]
fn rejoin_after_leave_works() {
    let mut c = Cluster::build(4, cfg());
    let now = c.now;
    c.nodes[2].leave(now);
    c.pump();
    // Rejoin through node 0.
    let seed = c.nodes[0].id();
    let now = c.now;
    c.nodes[2].join_via(seed, now);
    c.pump();
    assert!(c.nodes[2].is_joined());
    for n in &c.nodes {
        assert_eq!(n.peer_keys().len(), 3, "full view restored at {}", n.id());
    }
}

#[test]
fn large_overlay_multi_hop_routing_and_caching() {
    // 48 nodes with small leaf sets: lookups outside the leaf interval must
    // traverse the prefix routing table, and repeated lookups hit caches at
    // intermediate hops.
    let mut config = cfg();
    config.leaf_size = 2;
    let mut c = Cluster::build(48, config);
    let keys: Vec<Key> = (0..64)
        .map(|i| Key::from_name(&format!("big-{i}")))
        .collect();
    for &k in &keys {
        c.put(0, k, b"data", OverwritePolicy::Overwrite);
    }
    let mut max_hops = 0u8;
    for (i, &k) in keys.iter().enumerate() {
        let (v, _, hops) = c.get(i % 48, k);
        assert_eq!(v.unwrap(), b"data");
        max_hops = max_hops.max(hops);
    }
    assert!(
        max_hops > 2,
        "48-node overlay should need multi-hop routing, saw max {max_hops}"
    );
    // Repeat the same lookups: some must now be answered from caches.
    for (i, &k) in keys.iter().enumerate() {
        let _ = c.get(i % 48, k);
    }
    let cache_answers: u64 = c.nodes.iter().map(|n| n.stats().cache_answers).sum();
    assert!(cache_answers > 0, "repeated lookups should hit path caches");
}

#[test]
fn replication_counts_match_configuration() {
    let mut config = cfg();
    config.replication = 2;
    let mut c = Cluster::build(6, config);
    let k = Key::from_name("replicated-object");
    c.put(0, k, b"r", OverwritePolicy::Overwrite);
    let holders = c.nodes.iter().filter(|n| n.local_get(k).is_some()).count();
    // Root + 2 replicas.
    assert_eq!(holders, 3, "expected root plus two replicas");
}

#[test]
fn stats_track_operations() {
    let mut c = Cluster::build(3, cfg());
    let k = Key::from_name("stats-object");
    c.put(0, k, b"s", OverwritePolicy::Overwrite);
    let _ = c.get(1, k);
    assert_eq!(c.nodes[0].stats().puts, 1);
    assert_eq!(c.nodes[1].stats().gets, 1);
    let ids_with_traffic = c.nodes.iter().filter(|n| n.stats().msgs_out > 0).count();
    assert!(ids_with_traffic >= 2);
}

#[test]
fn local_membership_helpers_are_consistent() {
    let c = Cluster::build(5, cfg());
    let ids = c.ids();
    for n in &c.nodes {
        let mut expected: Vec<Key> = ids.iter().copied().filter(|&k| k != n.id()).collect();
        expected.sort();
        assert_eq!(n.peer_keys(), expected);
        // is_root_for agrees with the global model.
        for probe in 0..20u64 {
            let k = Key::from_name(&format!("probe-{probe}"));
            let global = root_of(k, ids.iter().copied()).unwrap();
            assert_eq!(n.is_root_for(k), global == n.id());
        }
    }
}

#[test]
fn delete_removes_record_everywhere() {
    let mut config = cfg();
    config.replication = 2;
    let mut c = Cluster::build(6, config);
    let k = Key::from_name("deleted-object");
    c.put(0, k, b"data", OverwritePolicy::Overwrite);
    assert_eq!(
        c.nodes.iter().filter(|n| n.local_get(k).is_some()).count(),
        3,
        "root plus two replicas before deletion"
    );
    let now = c.now;
    let req = c.nodes[2].delete(k, now).unwrap();
    c.pump();
    let ok = c.events[2].drain(..).any(
        |e| matches!(e, DhtEvent::DeleteCompleted { req: r, result: Ok(true), .. } if r == req),
    );
    assert!(ok, "delete should acknowledge an existing record");
    assert_eq!(
        c.nodes.iter().filter(|n| n.local_get(k).is_some()).count(),
        0,
        "no copy survives deletion"
    );
    let (v, _, _) = c.get(1, k);
    assert_eq!(v, None);
}

#[test]
fn delete_of_missing_key_reports_not_existed() {
    let mut c = Cluster::build(4, cfg());
    let now = c.now;
    let req = c.nodes[1].delete(Key::from_name("ghost"), now).unwrap();
    c.pump();
    let ok = c.events[1].drain(..).any(
        |e| matches!(e, DhtEvent::DeleteCompleted { req: r, result: Ok(false), .. } if r == req),
    );
    assert!(ok);
}

#[test]
fn delete_invalidates_path_caches() {
    let mut config = cfg();
    config.leaf_size = 2;
    let mut c = Cluster::build(32, config);
    let k = Key::from_name("cached-then-deleted");
    c.put(0, k, b"v", OverwritePolicy::Overwrite);
    // Warm caches along a multi-hop path.
    for _ in 0..3 {
        let (v, _, _) = c.get(7, k);
        assert_eq!(v.as_deref(), Some(&b"v"[..]));
    }
    let now = c.now;
    c.nodes[7].delete(k, now).unwrap();
    c.pump();
    c.events[7].clear();
    // A fresh lookup must not resurrect the record from a stale cache.
    let (v, from_cache, _) = c.get(7, k);
    assert_eq!(v, None, "stale cache served a deleted record");
    assert!(!from_cache);
}

#[test]
fn delete_before_join_is_rejected() {
    let mut node = ChimeraNode::new(Key::from_name("solo"), cfg());
    assert_eq!(
        node.delete(Key::from_name("x"), SimTime::ZERO).unwrap_err(),
        DhtError::NotJoined
    );
}
