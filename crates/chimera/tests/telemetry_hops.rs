//! Trace-based overlay routing tests: the `chimera.lookup_hops` histogram
//! recorded by the telemetry layer must stay within the structured
//! overlay's logarithmic bound, and warm-up traffic (which fills routing
//! tables as nodes learn peers from observed messages) must shorten routes.

use c4h_chimera::{ChimeraConfig, ChimeraNode, Key, OverwritePolicy};
use c4h_simnet::SimTime;
use c4h_telemetry::Recorder;

const N: usize = 32;
const KEYS: usize = 24;
/// Same per-node track layout the runtime uses for `dht.*` spans.
const DHT_TRACK_BASE: u64 = 3_000_000;

/// Delivers messages synchronously until the overlay is quiescent.
fn pump(nodes: &mut [ChimeraNode]) {
    let now = SimTime::ZERO;
    for _ in 0..100_000 {
        let mut moved = false;
        for i in 0..nodes.len() {
            while let Some(env) = nodes[i].poll_send() {
                moved = true;
                if let Some(j) = nodes.iter().position(|n| n.id() == env.to) {
                    nodes[j].handle(env, now);
                }
            }
        }
        if !moved {
            for n in nodes.iter_mut() {
                while n.poll_event().is_some() {}
            }
            return;
        }
    }
    panic!("overlay failed to quiesce");
}

/// One round of lookups of every stored key from scattered clients.
fn lookup_round(nodes: &mut [ChimeraNode], salt: usize) {
    let now = SimTime::ZERO;
    for k in 0..KEYS {
        let key = Key::from_name(&format!("hops/key-{k}"));
        let client = (k * 13 + salt) % N;
        nodes[client].get(key, now).unwrap();
        pump(nodes);
    }
}

#[test]
fn lookup_hops_stay_logarithmic_and_shrink_after_warmup() {
    let now = SimTime::ZERO;
    let mut nodes: Vec<ChimeraNode> = (0..N)
        .map(|i| {
            ChimeraNode::new(
                Key::from_name(&format!("hop-{i}")),
                ChimeraConfig::default(),
            )
        })
        .collect();
    nodes[0].bootstrap(now);
    let seed = nodes[0].id();
    for i in 1..N {
        nodes[i].join_via(seed, now);
        pump(&mut nodes);
    }

    let rec = Recorder::new();
    rec.set_enabled(true);
    for (i, n) in nodes.iter_mut().enumerate() {
        n.set_telemetry(rec.clone(), DHT_TRACK_BASE + i as u64);
    }
    for k in 0..KEYS {
        let key = Key::from_name(&format!("hops/key-{k}"));
        nodes[(k * 7) % N]
            .put(key, vec![k as u8], OverwritePolicy::Overwrite, now)
            .unwrap();
        pump(&mut nodes);
    }

    // Cold: routing tables hold only what the staggered joins seeded.
    rec.clear();
    lookup_round(&mut nodes, 5);
    let cold = rec.snapshot();
    let cold_hops = cold.histograms["chimera.lookup_hops"].clone();
    assert_eq!(cold_hops.count as usize, KEYS, "every cold lookup resolves");
    assert!(
        cold.spans()
            .any(|s| s.cat == "dht" && s.arg("hops").is_some()),
        "lookups must leave dht spans carrying their hop count"
    );

    // Every lookup in a 32-node prefix-routed overlay stays within a small
    // multiple of log2(N) hops.
    let bound = 2 * usize::BITS as u64 - 2 * (N as u64).leading_zeros() as u64 + 2;
    assert!(
        cold_hops.max <= bound,
        "cold lookup took {} hops, bound is {bound}",
        cold_hops.max
    );

    // Warm up: more rounds of traffic teach every node the peers it missed
    // during its own join, then measure the same lookups again.
    for salt in 0..4 {
        lookup_round(&mut nodes, salt);
    }
    rec.clear();
    lookup_round(&mut nodes, 5);
    let warm = rec.snapshot();
    let warm_hops = warm.histograms["chimera.lookup_hops"].clone();
    assert_eq!(warm_hops.count as usize, KEYS, "every warm lookup resolves");
    assert!(warm_hops.max <= bound);
    assert!(
        warm_hops.mean() < cold_hops.mean(),
        "warm-up must shorten routes: warm mean {} vs cold mean {}",
        warm_hops.mean(),
        cold_hops.mean()
    );
}
