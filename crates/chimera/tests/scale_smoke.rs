//! Scale smoke test: a 10k-node overlay join followed by a 1k-op mixed
//! workload, under an explicit wall-clock budget.
//!
//! This is the engine-speed canary the `engine_throughput` bench can't be
//! (benches don't gate CI): if the event engine, the overlay's hot maps,
//! or the message pump regress to accidentally-quadratic behavior, the
//! budget blows and the release-tier CI step fails. The pump here is
//! O(messages) — a work queue of nodes with pending sends and an
//! `FxHashMap` id→index route table — so the budget measures the
//! per-message cost, not harness overhead.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use c4h_chimera::{ChimeraConfig, ChimeraNode, DhtEvent, Key, OverwritePolicy};
use c4h_simnet::{FxHashMap, SimTime};

/// Deterministic splitmix64 stream for origin/key selection.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// An overlay harness built for size: O(1) id→index routing and a
/// message pump that only visits nodes with work.
struct ScaleCluster {
    nodes: Vec<ChimeraNode>,
    index: FxHashMap<Key, usize>,
    now: SimTime,
}

impl ScaleCluster {
    fn build(n: usize) -> Self {
        let config = ChimeraConfig::default();
        let mut c = ScaleCluster {
            nodes: Vec::with_capacity(n),
            index: FxHashMap::default(),
            now: SimTime::ZERO,
        };
        for i in 0..n {
            let id = Key::from_name(&format!("scale-node-{i}"));
            c.index.insert(id, i);
            c.nodes.push(ChimeraNode::new(id, config.clone()));
        }
        c.nodes[0].bootstrap(c.now);
        let seed = c.nodes[0].id();
        for i in 1..n {
            c.nodes[i].join_via(seed, c.now);
            c.drain_from(i, None);
        }
        c
    }

    /// Delivers every message transitively reachable from `start`'s
    /// outbox. Visiting only nodes known to have work keeps one pump at
    /// O(messages) instead of O(nodes), and discarding byproduct events
    /// (`PeerJoined` floods — ~n per node over a full join) as they appear
    /// keeps memory flat; `keep`'s events are preserved for the caller.
    fn drain_from(&mut self, start: usize, keep: Option<usize>) {
        let mut work: VecDeque<usize> = VecDeque::new();
        work.push_back(start);
        let mut delivered: u64 = 0;
        while let Some(i) = work.pop_front() {
            if Some(i) != keep {
                while self.nodes[i].poll_event().is_some() {}
            }
            while let Some(env) = self.nodes[i].poll_send() {
                delivered += 1;
                assert!(
                    delivered < 50_000_000,
                    "overlay failed to quiesce (message storm)"
                );
                let j = *self
                    .index
                    .get(&env.to)
                    .unwrap_or_else(|| panic!("unknown destination {}", env.to));
                let now = self.now;
                self.nodes[j].handle(env, now);
                if Some(j) != keep {
                    while self.nodes[j].poll_event().is_some() {}
                }
                work.push_back(j);
            }
        }
    }

    fn put(&mut self, origin: usize, key: Key, data: Vec<u8>) {
        let now = self.now;
        self.nodes[origin]
            .put(key, data, OverwritePolicy::Overwrite, now)
            .expect("node is joined");
        self.drain_from(origin, None);
    }

    fn get(&mut self, origin: usize, key: Key) -> Option<Vec<u8>> {
        let now = self.now;
        let req = self.nodes[origin].get(key, now).expect("node is joined");
        self.drain_from(origin, Some(origin));
        while let Some(e) = self.nodes[origin].poll_event() {
            if let DhtEvent::GetCompleted {
                req: r,
                value,
                result,
                ..
            } = e
            {
                if r == req {
                    result.expect("get failed");
                    return value.map(|v| v.latest().to_vec());
                }
            }
        }
        panic!("get {key} did not complete");
    }
}

/// Joins `n` nodes, runs `ops` mixed puts/gets, and asserts the whole
/// run fits in `budget` wall-clock time with every read returning the
/// last written bytes.
fn join_and_churn(n: usize, ops: usize, budget: Duration) {
    let started = Instant::now();
    let mut cluster = ScaleCluster::build(n);
    let join_elapsed = started.elapsed();

    let mut mix = Mix(0xC10D_4B0E);
    let mut written: Vec<(Key, Vec<u8>)> = Vec::new();
    for i in 0..ops {
        let origin = (mix.next() % n as u64) as usize;
        // 50/50 put/get, reads always hitting previously written keys.
        if written.is_empty() || i % 2 == 0 {
            let key = Key::from_name(&format!("scale-obj-{i}"));
            let data = format!("payload-{i}-{}", mix.next()).into_bytes();
            cluster.put(origin, key, data.clone());
            written.push((key, data));
        } else {
            let (key, expect) = &written[(mix.next() % written.len() as u64) as usize];
            let got = cluster.get(origin, *key);
            assert_eq!(
                got.as_deref(),
                Some(expect.as_slice()),
                "read returned wrong bytes for {key}"
            );
        }
    }

    let elapsed = started.elapsed();
    assert!(
        elapsed <= budget,
        "scale smoke blew its wall-clock budget: {n} nodes joined in \
         {join_elapsed:?}, {ops} ops finished at {elapsed:?} (budget {budget:?}) \
         — the engine or overlay has regressed super-linearly"
    );
}

/// Release-tier smoke: 10k nodes, 1k mixed ops. Full membership makes
/// the join flood inherently O(n²) messages (~5×10⁷ deliveries), so the
/// healthy release runtime is ~6.5 min; the budget is ~3× that — loose
/// enough for slower CI runners, tight enough to catch super-linear
/// regressions (which overshoot by an order of magnitude). Debug builds
/// skip it (`cargo test --release` runs it; see the CI release step).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-tier scale smoke; run with --release"
)]
fn ten_k_node_join_and_mixed_workload() {
    join_and_churn(10_000, 1_000, Duration::from_secs(1200));
}

/// Debug-tier variant: same shape at 1/10 scale so every `cargo test`
/// still exercises the scale harness end to end.
#[test]
fn one_k_node_join_and_mixed_workload() {
    join_and_churn(1_000, 100, Duration::from_secs(120));
}
