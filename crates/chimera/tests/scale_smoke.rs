//! Scale smoke tests: overlay construction plus a mixed workload, under
//! explicit wall-clock budgets, at two scales.
//!
//! This is the engine-speed canary the `engine_throughput` bench can't be
//! (benches don't gate CI): if the event engine, the overlay's hot maps,
//! or the message pump regress to accidentally-quadratic behavior, the
//! budget blows and the release-tier CI step fails. The pump here is
//! O(messages) — a work queue of nodes with pending sends and an
//! `FxHashMap` id→index route table — so the budget measures the
//! per-message cost, not harness overhead.
//!
//! Two construction paths are exercised:
//!
//! - **Protocol join** (10k nodes): every node joins through the seed and
//!   the announcement flood runs to quiescence — O(n²) deliveries, the
//!   full protocol cost.
//! - **Bulk assembly** (10⁶ nodes): the harness sorts the whole key
//!   population once and hands each node its true ring neighbourhood plus
//!   one representative per populated prefix-table slot via
//!   [`ChimeraNode::assemble`] — zero messages, O(view) per node. A
//!   debug-tier test pins the two paths to identical record placement and
//!   read results on the same key population.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use c4h_chimera::{ChimeraConfig, ChimeraNode, DhtEvent, Key, OverwritePolicy, KEY_DIGITS};
use c4h_simnet::{FxHashMap, SimTime};

/// Deterministic splitmix64 stream for origin/key selection.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// An overlay harness built for size: O(1) id→index routing and a
/// message pump that only visits nodes with work.
struct ScaleCluster {
    nodes: Vec<ChimeraNode>,
    index: FxHashMap<Key, usize>,
    now: SimTime,
}

impl ScaleCluster {
    /// Generates `n` distinct node keys plus the id→index map. Keys live
    /// in a 40-bit space, so at 10⁶ nodes a birthday collision is more
    /// likely than not (~0.45 expected); colliding names are salted until
    /// unique so both builders see the same well-formed population.
    fn keys_for(n: usize) -> (Vec<Key>, FxHashMap<Key, usize>) {
        let mut keys = Vec::with_capacity(n);
        let mut index = FxHashMap::default();
        for i in 0..n {
            let mut salt = 0u64;
            let id = loop {
                let k = if salt == 0 {
                    Key::from_name(&format!("scale-node-{i}"))
                } else {
                    Key::from_name(&format!("scale-node-{i}-{salt}"))
                };
                if !index.contains_key(&k) {
                    break k;
                }
                salt += 1;
            };
            index.insert(id, i);
            keys.push(id);
        }
        (keys, index)
    }

    fn empty(n: usize) -> (Self, Vec<Key>) {
        let config = ChimeraConfig::default();
        let (keys, index) = Self::keys_for(n);
        let mut c = ScaleCluster {
            nodes: Vec::with_capacity(n),
            index,
            now: SimTime::ZERO,
        };
        for &id in &keys {
            c.nodes.push(ChimeraNode::new(id, config.clone()));
        }
        (c, keys)
    }

    fn build(n: usize) -> Self {
        let (mut c, _) = Self::empty(n);
        c.nodes[0].bootstrap(c.now);
        let seed = c.nodes[0].id();
        for i in 1..n {
            c.nodes[i].join_via(seed, c.now);
            c.drain_from(i, None);
        }
        c
    }

    /// Builds the overlay through [`ChimeraNode::assemble`]: sort the key
    /// population once, then hand each node its true ring neighbourhood
    /// (`leaf_size` keys per side — the correctness contract) plus one
    /// representative per populated prefix-table slot. Prefix ranges are
    /// contiguous in the sorted list, so each slot's representative is one
    /// binary search; `rows` covers log₁₆ n digits, past which slots are
    /// almost surely empty. Zero messages, O(n · view) total work — the
    /// only construction that is feasible at 10⁶ nodes, where protocol
    /// join would need ~10¹² deliveries.
    fn build_assembled(n: usize) -> Self {
        let (mut c, keys) = Self::empty(n);
        let leaf_size = c.nodes[0].config().leaf_size;
        let mut sorted = keys;
        sorted.sort_unstable();
        let raws: Vec<u64> = sorted.iter().map(|k| k.raw()).collect();
        let rows = (usize::BITS - n.leading_zeros())
            .div_ceil(4)
            .min(KEY_DIGITS as u32);
        let now = c.now;
        for (r, &id) in sorted.iter().enumerate() {
            let own = id.raw();
            let mut view = Vec::with_capacity(2 * leaf_size + 15 * rows as usize);
            // True ring neighbours; on tiny rings the window may wrap onto
            // self or repeat — `assemble` deduplicates and skips self.
            for d in 1..=leaf_size {
                view.push(sorted[(r + d) % n]);
                view.push(sorted[(r + n - d) % n]);
            }
            for row in 0..rows as usize {
                let shift = 4 * (KEY_DIGITS - 1 - row) as u64;
                let prefix = own >> (shift + 4) << (shift + 4);
                for c4 in 0..16u64 {
                    if c4 == (own >> shift) & 0xF {
                        continue;
                    }
                    let lo = prefix | (c4 << shift);
                    let p = raws.partition_point(|&x| x < lo);
                    if p < n && raws[p] < lo + (1u64 << shift) {
                        view.push(sorted[p]);
                    }
                }
            }
            let i = c.index[&id];
            c.nodes[i].assemble(view, now);
            while c.nodes[i].poll_event().is_some() {}
        }
        c
    }

    /// Delivers every message transitively reachable from `start`'s
    /// outbox. Visiting only nodes known to have work keeps one pump at
    /// O(messages) instead of O(nodes), and discarding byproduct events
    /// (`PeerJoined` floods — ~n per node over a full join) as they appear
    /// keeps memory flat; `keep`'s events are preserved for the caller.
    fn drain_from(&mut self, start: usize, keep: Option<usize>) {
        let mut work: VecDeque<usize> = VecDeque::new();
        work.push_back(start);
        let mut delivered: u64 = 0;
        while let Some(i) = work.pop_front() {
            if Some(i) != keep {
                while self.nodes[i].poll_event().is_some() {}
            }
            while let Some(env) = self.nodes[i].poll_send() {
                delivered += 1;
                assert!(
                    delivered < 50_000_000,
                    "overlay failed to quiesce (message storm)"
                );
                let j = *self
                    .index
                    .get(&env.to)
                    .unwrap_or_else(|| panic!("unknown destination {}", env.to));
                let now = self.now;
                self.nodes[j].handle(env, now);
                if Some(j) != keep {
                    while self.nodes[j].poll_event().is_some() {}
                }
                work.push_back(j);
            }
        }
    }

    fn put(&mut self, origin: usize, key: Key, data: Vec<u8>) {
        let now = self.now;
        self.nodes[origin]
            .put(key, data, OverwritePolicy::Overwrite, now)
            .expect("node is joined");
        self.drain_from(origin, None);
    }

    fn get(&mut self, origin: usize, key: Key) -> Option<Vec<u8>> {
        let now = self.now;
        let req = self.nodes[origin].get(key, now).expect("node is joined");
        self.drain_from(origin, Some(origin));
        while let Some(e) = self.nodes[origin].poll_event() {
            if let DhtEvent::GetCompleted {
                req: r,
                value,
                result,
                ..
            } = e
            {
                if r == req {
                    result.expect("get failed");
                    return value.map(|v| v.latest().to_vec());
                }
            }
        }
        panic!("get {key} did not complete");
    }
}

/// Runs `ops` mixed puts/gets against a built cluster and asserts every
/// read returns the last written bytes.
fn churn(cluster: &mut ScaleCluster, ops: usize) {
    let n = cluster.nodes.len();
    let mut mix = Mix(0xC10D_4B0E);
    let mut written: Vec<(Key, Vec<u8>)> = Vec::new();
    for i in 0..ops {
        let origin = (mix.next() % n as u64) as usize;
        // 50/50 put/get, reads always hitting previously written keys.
        if written.is_empty() || i % 2 == 0 {
            let key = Key::from_name(&format!("scale-obj-{i}"));
            let data = format!("payload-{i}-{}", mix.next()).into_bytes();
            cluster.put(origin, key, data.clone());
            written.push((key, data));
        } else {
            let (key, expect) = &written[(mix.next() % written.len() as u64) as usize];
            let got = cluster.get(origin, *key);
            assert_eq!(
                got.as_deref(),
                Some(expect.as_slice()),
                "read returned wrong bytes for {key}"
            );
        }
    }
}

/// Builds an `n`-node cluster via `build`, runs `ops` mixed puts/gets,
/// and asserts the whole run fits in `budget` wall-clock time.
fn build_and_churn(
    n: usize,
    ops: usize,
    budget: Duration,
    build: impl FnOnce(usize) -> ScaleCluster,
) {
    let started = Instant::now();
    let mut cluster = build(n);
    let join_elapsed = started.elapsed();
    churn(&mut cluster, ops);
    let elapsed = started.elapsed();
    assert!(
        elapsed <= budget,
        "scale smoke blew its wall-clock budget: {n} nodes built in \
         {join_elapsed:?}, {ops} ops finished at {elapsed:?} (budget {budget:?}) \
         — the engine or overlay has regressed super-linearly"
    );
}

/// Release-tier smoke: 10k nodes, 1k mixed ops. Full membership makes
/// the join flood inherently O(n²) messages (~5×10⁷ deliveries), so the
/// healthy release runtime is ~6.5 min; the budget is ~3× that — loose
/// enough for slower CI runners, tight enough to catch super-linear
/// regressions (which overshoot by an order of magnitude). Debug builds
/// skip it (`cargo test --release` runs it; see the CI release step).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-tier scale smoke; run with --release"
)]
fn ten_k_node_join_and_mixed_workload() {
    build_and_churn(
        10_000,
        1_000,
        Duration::from_secs(1200),
        ScaleCluster::build,
    );
}

/// Release-tier milestone: a 10⁶-node overlay, bulk-assembled (protocol
/// join at this scale would be ~10¹² deliveries), then a mixed workload
/// routed through partial views. Exercises the whole read/write path at
/// a population where per-node state must stay O(log n): true leaf sets,
/// sampled prefix tables, closest-known fallback. The budget bounds
/// assembly (sort + per-node view computation + view install) plus the
/// workload; super-linear regressions in either overshoot it by an order
/// of magnitude.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-tier scale milestone; run with --release"
)]
fn million_node_assembled_overlay_and_mixed_workload() {
    build_and_churn(
        1_000_000,
        1_000,
        Duration::from_secs(1200),
        ScaleCluster::build_assembled,
    );
}

/// Debug-tier variant: same shape at 1/10 scale so every `cargo test`
/// still exercises the scale harness end to end.
#[test]
fn one_k_node_join_and_mixed_workload() {
    build_and_churn(1_000, 100, Duration::from_secs(120), ScaleCluster::build);
}

/// Debug-tier assembly check at 1/1000 scale: the assembled builder's
/// partial views (ring window + prefix samples) must serve the workload
/// exactly like the full-membership protocol path.
#[test]
fn one_k_node_assembled_overlay_and_mixed_workload() {
    build_and_churn(
        1_000,
        100,
        Duration::from_secs(120),
        ScaleCluster::build_assembled,
    );
}

/// Bulk assembly is a construction-path optimization, not a semantic
/// change: on the same key population and op stream, an assembled overlay
/// must place every record on exactly the node a protocol-joined overlay
/// places it on (same roots, same replica sets) and return the same
/// bytes. Pins the `assemble` contract — true leaf sets make partial
/// views indistinguishable from full membership for routing decisions.
#[test]
fn assembled_overlay_matches_protocol_join() {
    let n = 48;
    let mut joined = ScaleCluster::build(n);
    let mut assembled = ScaleCluster::build_assembled(n);
    churn(&mut joined, 60);
    churn(&mut assembled, 60);
    for i in 0..n {
        assert_eq!(joined.nodes[i].id(), assembled.nodes[i].id());
        assert_eq!(
            joined.nodes[i].owned_records(),
            assembled.nodes[i].owned_records(),
            "node {i} owns a different record set under assembly"
        );
        assert_eq!(
            joined.nodes[i].replica_records(),
            assembled.nodes[i].replica_records(),
            "node {i} holds a different replica set under assembly"
        );
    }
}
