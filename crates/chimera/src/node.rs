//! The sans-io overlay node state machine.
//!
//! [`ChimeraNode`] implements the full overlay lifecycle — bootstrap, join,
//! graceful leave, failure detection — and the DHT operations (`put`/`get`
//! with overwrite policies, path caching, and replication) as a pure state
//! machine: inputs are [`Envelope`]s, timer ticks, and API calls; outputs
//! are drained through [`ChimeraNode::poll_send`] (messages for the
//! transport) and [`ChimeraNode::poll_event`] (completions for the
//! application).
//!
//! This mirrors how the paper layers VStore++ over Chimera: the metadata and
//! resource-management layer issues key-value operations, and the overlay
//! routes them to the responsible node ("the object name is hashed, and the
//! object information is routed to a node with an ID closest to the hash
//! value").

use std::collections::VecDeque;

use c4h_simnet::FxHashMap;
use std::time::Duration;

use c4h_simnet::SimTime;
use c4h_telemetry::{ArgValue, Recorder, SpanId};

use crate::key::{root_of, Key};
use crate::messages::{Envelope, Message, ReqId};
use crate::rbtree::RbTree;
use crate::routing::{route, LeafSet, NextHop, RoutingTable};
use crate::store::{LocalStore, MetaCache, OverwritePolicy, PutError, StoredValue};

/// Tunables of the overlay node.
#[derive(Debug, Clone, PartialEq)]
pub struct ChimeraConfig {
    /// Leaf-set size per side.
    pub leaf_size: usize,
    /// Number of replicas maintained beyond the root ("state can be
    /// replicated using a fixed replication factor").
    pub replication: usize,
    /// Intermediate-hop metadata cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// How long the origin waits before failing a pending request.
    pub request_timeout: Duration,
    /// Interval between liveness probes of ring neighbours.
    pub ping_interval: Duration,
    /// Consecutive missed probes before a neighbour is declared failed.
    pub fail_after_missed: u32,
    /// Routing-hop safety cap.
    pub max_hops: u8,
}

impl Default for ChimeraConfig {
    fn default() -> Self {
        ChimeraConfig {
            leaf_size: 2,
            replication: 1,
            cache_capacity: 128,
            request_timeout: Duration::from_secs(3),
            ping_interval: Duration::from_secs(1),
            fail_after_missed: 3,
            max_hops: 32,
        }
    }
}

/// Errors surfaced through [`DhtEvent`]s or returned by the request API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhtError {
    /// The node has not joined an overlay.
    NotJoined,
    /// The root rejected the update.
    Rejected(PutError),
    /// No reply arrived within the request timeout.
    Timeout,
}

impl std::fmt::Display for DhtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhtError::NotJoined => write!(f, "node has not joined an overlay"),
            DhtError::Rejected(e) => write!(f, "put rejected: {e}"),
            DhtError::Timeout => write!(f, "request timed out"),
        }
    }
}

impl std::error::Error for DhtError {}

/// Completions and membership notifications delivered to the application.
#[derive(Debug, Clone, PartialEq)]
pub enum DhtEvent {
    /// This node completed its join.
    Joined {
        /// Number of peers learned at join time.
        peers: usize,
    },
    /// A join attempt timed out.
    JoinFailed,
    /// A `put` finished.
    PutCompleted {
        /// The request.
        req: ReqId,
        /// Resulting record version, or the failure.
        result: Result<u64, DhtError>,
        /// Routing hops taken.
        hops: u8,
    },
    /// A `delete` finished.
    DeleteCompleted {
        /// The request.
        req: ReqId,
        /// `Ok(true)` if a record existed and was removed.
        result: Result<bool, DhtError>,
        /// Routing hops taken.
        hops: u8,
    },
    /// A `get` finished.
    GetCompleted {
        /// The request.
        req: ReqId,
        /// The record key.
        key: Key,
        /// The value, if any (`None` can also mean timeout — see `result`).
        value: Option<StoredValue>,
        /// Whether an intermediate cache answered.
        from_cache: bool,
        /// Routing hops taken (request + reply legs).
        hops: u8,
        /// `Err` on timeout.
        result: Result<(), DhtError>,
    },
    /// A new peer entered the overlay.
    PeerJoined {
        /// The new peer.
        node: Key,
    },
    /// A peer left gracefully.
    PeerRetired {
        /// The departed peer.
        node: Key,
    },
    /// A peer was declared failed by the liveness detector.
    PeerFailed {
        /// The failed peer.
        node: Key,
    },
}

/// Per-peer liveness bookkeeping.
#[derive(Debug, Clone)]
struct PeerState {
    incarnation: u32,
    awaiting_pong: bool,
    missed: u32,
}

#[derive(Debug, Clone)]
enum PendingKind {
    Join,
    Put,
    Get { key: Key },
    Delete,
}

#[derive(Debug, Clone)]
struct Pending {
    kind: PendingKind,
    deadline: SimTime,
}

/// Message-level statistics, exposed for the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Envelopes processed from the network.
    pub msgs_in: u64,
    /// Envelopes queued for the network.
    pub msgs_out: u64,
    /// `put` requests originated here.
    pub puts: u64,
    /// `get` requests originated here.
    pub gets: u64,
    /// Sum of hops over completed lookups (for mean-hop statistics).
    pub lookup_hops: u64,
    /// Lookups answered by an intermediate cache.
    pub cache_answers: u64,
}

/// A Chimera overlay node: prefix routing, leaf sets, a red-black-tree view
/// of the membership, and a replicated, cached key-value store.
///
/// # Examples
///
/// Two nodes, one join, one put/get round trip (driven without any network
/// by delivering envelopes directly):
///
/// ```
/// use c4h_chimera::{ChimeraConfig, ChimeraNode, DhtEvent, Key, OverwritePolicy};
/// use c4h_simnet::SimTime;
///
/// let now = SimTime::ZERO;
/// let mut a = ChimeraNode::new(Key::from_name("node-a"), ChimeraConfig::default());
/// let mut b = ChimeraNode::new(Key::from_name("node-b"), ChimeraConfig::default());
/// a.bootstrap(now);
/// b.join_via(a.id(), now);
///
/// // Pump messages until quiescent.
/// let mut nodes = [&mut a, &mut b];
/// loop {
///     let mut moved = false;
///     for i in 0..nodes.len() {
///         while let Some(env) = nodes[i].poll_send() {
///             moved = true;
///             let dst = nodes.iter_mut().find(|n| n.id() == env.to).unwrap();
///             dst.handle(env, now);
///         }
///     }
///     if !moved { break; }
/// }
/// assert!(nodes[1].is_joined());
/// ```
#[derive(Debug)]
pub struct ChimeraNode {
    id: Key,
    incarnation: u32,
    config: ChimeraConfig,
    peers: RbTree<Key, PeerState>,
    retired: FxHashMap<Key, u32>,
    table: RoutingTable,
    leaf: LeafSet,
    store: LocalStore,
    replicas: LocalStore,
    cache: MetaCache,
    pending: FxHashMap<ReqId, Pending>,
    outbox: VecDeque<Envelope>,
    events: VecDeque<DhtEvent>,
    joined: bool,
    next_req: ReqId,
    last_ping_round: Option<SimTime>,
    stats: NodeStats,
    telemetry: Option<(Recorder, u64)>,
    req_spans: FxHashMap<ReqId, SpanId>,
}

impl ChimeraNode {
    /// Creates a node with the given overlay ID.
    pub fn new(id: Key, config: ChimeraConfig) -> Self {
        let cache_capacity = config.cache_capacity;
        ChimeraNode {
            id,
            incarnation: 1,
            table: RoutingTable::new(id),
            leaf: LeafSet::new(),
            peers: RbTree::new(),
            retired: FxHashMap::default(),
            store: LocalStore::new(),
            replicas: LocalStore::new(),
            cache: MetaCache::new(cache_capacity),
            pending: FxHashMap::default(),
            outbox: VecDeque::new(),
            events: VecDeque::new(),
            joined: false,
            next_req: 1,
            last_ping_round: None,
            config,
            stats: NodeStats::default(),
            telemetry: None,
            req_spans: FxHashMap::default(),
        }
    }

    /// Attaches a telemetry recorder. Every originated `put`/`get`/`delete`
    /// request becomes a `dht.*` span on `track`, closed with the routing
    /// hop count and outcome; completed lookups also feed the
    /// `chimera.lookup_hops` histogram.
    pub fn set_telemetry(&mut self, recorder: Recorder, track: u64) {
        self.telemetry = Some((recorder, track));
    }

    /// Opens the span for an originated request.
    fn open_req_span(&mut self, req: ReqId, name: &'static str, now: SimTime) {
        if let Some((rec, track)) = &self.telemetry {
            let span = rec.begin_args(
                "dht",
                name,
                *track,
                now.as_nanos(),
                vec![("req", ArgValue::from(req))],
            );
            if !span.is_none() {
                self.req_spans.insert(req, span);
            }
        }
    }

    /// Closes an originated request's span with its hop count and outcome.
    /// Lookup completions (`observe_hops`) also feed the hop histogram.
    fn close_req_span(&mut self, req: ReqId, now: SimTime, hops: u8, ok: bool, observe_hops: bool) {
        let span = self.req_spans.remove(&req);
        let Some((rec, _)) = &self.telemetry else {
            return;
        };
        if let Some(span) = span {
            rec.end_args(
                span,
                now.as_nanos(),
                vec![
                    ("hops", ArgValue::from(u64::from(hops))),
                    ("ok", ArgValue::from(ok)),
                ],
            );
        }
        if ok && observe_hops {
            rec.observe("chimera.lookup_hops", u64::from(hops));
        }
    }

    /// This node's overlay ID.
    pub fn id(&self) -> Key {
        self.id
    }

    /// Whether the node has completed bootstrap or join.
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// The node's configuration.
    pub fn config(&self) -> &ChimeraConfig {
        &self.config
    }

    /// Message statistics.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Cache hit/miss counters `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Number of keys currently populated in the prefix routing table — a
    /// health-plane gauge for overlay connectivity.
    pub fn routing_table_size(&self) -> usize {
        self.table.entries().count()
    }

    /// The known peers, in key order — the red-black-tree "logical tree
    /// view" used by `chimeraGetDecision` to enumerate candidate nodes.
    pub fn peer_keys(&self) -> Vec<Key> {
        self.peers.keys().copied().collect()
    }

    /// Number of records this node owns as root.
    pub fn owned_records(&self) -> usize {
        self.store.len()
    }

    /// Number of replica records held for neighbours.
    pub fn replica_records(&self) -> usize {
        self.replicas.len()
    }

    /// Reads a record directly from local state (root or replica copy),
    /// bypassing the overlay.
    pub fn local_get(&self, key: Key) -> Option<&StoredValue> {
        self.store.get(key).or_else(|| self.replicas.get(key))
    }

    /// Drops any cached copy of `key`'s record. Cache entries are refreshed
    /// only by puts routed *through* this node, so a record rewritten
    /// elsewhere (e.g. an object converted to erasure-coded form) can leave
    /// a stale copy here indefinitely; control planes that know a record
    /// changed call this to force the next lookup back to the root.
    pub fn invalidate_cached(&mut self, key: Key) {
        self.cache.invalidate(key);
    }

    /// Whether this node is the root for `key` among its known membership.
    pub fn is_root_for(&self, key: Key) -> bool {
        root_of(
            key,
            self.peers.keys().copied().chain(std::iter::once(self.id)),
        ) == Some(self.id)
    }

    /// Starts a brand-new overlay with this node as the only member.
    pub fn bootstrap(&mut self, _now: SimTime) {
        self.joined = true;
        self.events.push_back(DhtEvent::Joined { peers: 0 });
    }

    /// Joins an existing overlay through `seed`.
    ///
    /// Emits [`DhtEvent::Joined`] on success or [`DhtEvent::JoinFailed`] on
    /// timeout.
    pub fn join_via(&mut self, seed: Key, now: SimTime) {
        let req = self.alloc_req();
        self.pending.insert(
            req,
            Pending {
                kind: PendingKind::Join,
                deadline: now + self.config.request_timeout,
            },
        );
        self.send(
            seed,
            Message::WelcomeRequest {
                joiner: self.id,
                incarnation: self.incarnation,
            },
        );
    }

    /// Installs a membership view directly and marks the node joined,
    /// without exchanging a single message — the bulk-assembly path for
    /// constructing very large overlays. A protocol join floods O(n)
    /// announcements per joiner (O(n²) deliveries for a full cluster), and
    /// full membership views cost O(n) entries per node; at 10⁶ nodes both
    /// are ruinous. Assembly sidesteps both: the caller computes each
    /// node's view offline (it knows the whole key population) and installs
    /// it in O(view) time and memory.
    ///
    /// Correctness contract: routing delivers at the true root only when
    /// every node's leaf set holds its *true* ring neighbours, so `view`
    /// must include at least this node's `leaf_size` closest live keys on
    /// each side of the identifier ring (slice a window around the node in
    /// the globally sorted key list). Any further keys — e.g. one
    /// representative per populated prefix-table slot, found by binary
    /// search on that same sorted list — only shorten routes; with true
    /// leaf sets, `covers`-based final delivery, prefix-table hops, and
    /// the closest-known fallback all remain exact (each hop strictly
    /// decreases ring distance to the root, so lookups terminate).
    ///
    /// Peers already known keep their state; this node's own key and
    /// retired incarnations are ignored, mirroring a Welcome import.
    /// Emits [`DhtEvent::Joined`] exactly like a protocol join.
    pub fn assemble<I: IntoIterator<Item = Key>>(&mut self, view: I, _now: SimTime) {
        for k in view {
            self.learn_peer_quiet(k, 1);
        }
        self.rebuild_views();
        self.joined = true;
        self.events.push_back(DhtEvent::Joined {
            peers: self.peers.len(),
        });
    }

    /// Leaves the overlay gracefully: redistributes owned records to their
    /// new roots and announces retirement to ring neighbours ("a departing
    /// node's keys are always redistributed among the available set of
    /// nodes").
    pub fn leave(&mut self, _now: SimTime) {
        if !self.joined {
            return;
        }
        // Hand each owned record to the closest remaining peer. BTreeMap so
        // the transfer order is identical across same-seed runs.
        let mut by_target: std::collections::BTreeMap<Key, Vec<(Key, StoredValue)>> =
            std::collections::BTreeMap::new();
        let all: Vec<(Key, StoredValue)> = self.store.drain_matching(|_| true);
        for (k, v) in all {
            if let Some(target) = root_of(k, self.peers.keys().copied()) {
                by_target.entry(target).or_default().push((k, v));
            }
        }
        for (target, records) in by_target {
            self.send(target, Message::KeyTransfer { records });
        }
        for n in self.leaf.immediate_neighbors() {
            self.send(
                n,
                Message::Retire {
                    node: self.id,
                    incarnation: self.incarnation,
                },
            );
        }
        self.joined = false;
        self.incarnation += 1;
    }

    /// Issues a `put` of `data` under `key` with the given overwrite policy.
    ///
    /// Completion is reported via [`DhtEvent::PutCompleted`].
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::NotJoined`] before bootstrap/join completes.
    pub fn put(
        &mut self,
        key: Key,
        data: Vec<u8>,
        policy: OverwritePolicy,
        now: SimTime,
    ) -> Result<ReqId, DhtError> {
        if !self.joined {
            return Err(DhtError::NotJoined);
        }
        let req = self.alloc_req();
        self.stats.puts += 1;
        self.pending.insert(
            req,
            Pending {
                kind: PendingKind::Put,
                deadline: now + self.config.request_timeout,
            },
        );
        self.open_req_span(req, "dht.put", now);
        let msg = Message::Put {
            req,
            origin: self.id,
            key,
            data,
            policy,
            hops: 0,
        };
        self.process_local(msg, now);
        Ok(req)
    }

    /// Issues a `get` for `key`.
    ///
    /// Completion is reported via [`DhtEvent::GetCompleted`].
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::NotJoined`] before bootstrap/join completes.
    pub fn get(&mut self, key: Key, now: SimTime) -> Result<ReqId, DhtError> {
        if !self.joined {
            return Err(DhtError::NotJoined);
        }
        let req = self.alloc_req();
        self.stats.gets += 1;
        self.pending.insert(
            req,
            Pending {
                kind: PendingKind::Get { key },
                deadline: now + self.config.request_timeout,
            },
        );
        self.open_req_span(req, "dht.get", now);
        let msg = Message::Get {
            req,
            origin: self.id,
            key,
            path: vec![self.id],
        };
        self.process_local(msg, now);
        Ok(req)
    }

    /// Issues a `delete` of `key`'s record.
    ///
    /// Completion is reported via [`DhtEvent::DeleteCompleted`]; replicas
    /// and path caches of the key are expunged.
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::NotJoined`] before bootstrap/join completes.
    pub fn delete(&mut self, key: Key, now: SimTime) -> Result<ReqId, DhtError> {
        if !self.joined {
            return Err(DhtError::NotJoined);
        }
        let req = self.alloc_req();
        self.pending.insert(
            req,
            Pending {
                kind: PendingKind::Delete,
                deadline: now + self.config.request_timeout,
            },
        );
        self.open_req_span(req, "dht.delete", now);
        let msg = Message::Delete {
            req,
            origin: self.id,
            key,
            hops: 0,
        };
        self.process_local(msg, now);
        Ok(req)
    }

    /// Feeds a received envelope into the state machine.
    pub fn handle(&mut self, env: Envelope, now: SimTime) {
        debug_assert_eq!(env.to, self.id, "envelope delivered to wrong node");
        self.stats.msgs_in += 1;
        self.process(env.from, env.msg, now);
    }

    /// Advances timers: request timeouts and neighbour liveness probing.
    pub fn tick(&mut self, now: SimTime) {
        self.expire_pending(now);
        if !self.joined {
            return;
        }
        let due = match self.last_ping_round {
            None => true,
            Some(t) => now
                .checked_duration_since(t)
                .is_some_and(|d| d >= self.config.ping_interval),
        };
        if !due {
            return;
        }
        self.last_ping_round = Some(now);
        let neighbors = self.leaf.immediate_neighbors();
        let mut failed = Vec::new();
        for n in neighbors {
            let Some(state) = self.peers.get_mut(&n) else {
                continue;
            };
            if state.awaiting_pong {
                state.missed += 1;
                if state.missed >= self.config.fail_after_missed {
                    failed.push((n, state.incarnation));
                    continue;
                }
            }
            state.awaiting_pong = true;
            self.send(n, Message::Ping { from: self.id });
        }
        for (node, inc) in failed {
            self.declare_failed(node, inc, now);
        }
    }

    /// Drains the next outgoing envelope, if any.
    pub fn poll_send(&mut self) -> Option<Envelope> {
        self.outbox.pop_front()
    }

    /// Drains the next application event, if any.
    pub fn poll_event(&mut self) -> Option<DhtEvent> {
        self.events.pop_front()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn alloc_req(&mut self) -> ReqId {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    fn send(&mut self, to: Key, msg: Message) {
        debug_assert_ne!(to, self.id, "use process_local for self-delivery");
        self.stats.msgs_out += 1;
        self.outbox.push_back(Envelope {
            from: self.id,
            to,
            msg,
        });
    }

    /// Processes a message originated locally (put/get start) without
    /// counting it as network traffic.
    fn process_local(&mut self, msg: Message, now: SimTime) {
        let from = self.id;
        self.process(from, msg, now);
    }

    fn process(&mut self, from: Key, msg: Message, now: SimTime) {
        // Any message from a peer is liveness evidence: reset its probe
        // bookkeeping so lossy links do not trigger false failure
        // declarations (SWIM-style suspicion damping).
        if from != self.id {
            if let Some(state) = self.peers.get_mut(&from) {
                state.awaiting_pong = false;
                state.missed = 0;
            }
        }
        match msg {
            Message::WelcomeRequest {
                joiner,
                incarnation,
            } => {
                let peers: Vec<(Key, u32)> = self
                    .peers
                    .iter()
                    .filter(|(k, _)| **k != joiner)
                    .map(|(k, s)| (*k, s.incarnation))
                    .chain(std::iter::once((self.id, self.incarnation)))
                    .collect();
                self.send(joiner, Message::Welcome { peers });
                self.learn_peer(joiner, incarnation, Some(from), now);
            }
            Message::Welcome { peers } => {
                for (k, inc) in peers {
                    if k != self.id {
                        self.learn_peer_quiet(k, inc);
                    }
                }
                self.rebuild_views();
                if !self.joined {
                    self.joined = true;
                    // Complete the pending join.
                    let join_reqs: Vec<ReqId> = self
                        .pending
                        .iter()
                        .filter(|(_, p)| matches!(p.kind, PendingKind::Join))
                        .map(|(r, _)| *r)
                        .collect();
                    for r in join_reqs {
                        self.pending.remove(&r);
                    }
                    self.events.push_back(DhtEvent::Joined {
                        peers: self.peers.len(),
                    });
                    // Announce ourselves to our new ring neighbours.
                    for n in self.leaf.immediate_neighbors() {
                        self.send(
                            n,
                            Message::Announce {
                                node: self.id,
                                incarnation: self.incarnation,
                            },
                        );
                    }
                }
            }
            Message::Announce { node, incarnation } => {
                self.learn_peer(node, incarnation, Some(from), now);
            }
            Message::Retire { node, incarnation } => {
                self.retire_peer(node, incarnation, false, now);
            }
            Message::KeyTransfer { records } => {
                for (k, v) in records {
                    self.store.install(k, v.clone());
                    self.replicate_record(k, v);
                }
            }
            Message::Put {
                req,
                origin,
                key,
                data,
                policy,
                hops,
            } => {
                self.handle_put(req, origin, key, data, policy, hops, now);
            }
            Message::PutOk { req, version, hops } => {
                if self.pending.remove(&req).is_some() {
                    self.close_req_span(req, now, hops, true, false);
                    self.events.push_back(DhtEvent::PutCompleted {
                        req,
                        result: Ok(version),
                        hops,
                    });
                }
            }
            Message::PutFailed { req, error, hops } => {
                if self.pending.remove(&req).is_some() {
                    self.close_req_span(req, now, hops, false, false);
                    self.events.push_back(DhtEvent::PutCompleted {
                        req,
                        result: Err(DhtError::Rejected(error)),
                        hops,
                    });
                }
            }
            Message::Get {
                req,
                origin,
                key,
                path,
            } => {
                self.handle_get(req, origin, key, path, now);
            }
            Message::GetReply {
                req,
                key,
                value,
                from_cache,
                path,
                path_pos,
                hops,
            } => {
                self.handle_get_reply(req, key, value, from_cache, path, path_pos, hops, now);
            }
            Message::Delete {
                req,
                origin,
                key,
                hops,
            } => {
                self.handle_delete(req, origin, key, hops);
            }
            Message::DeleteOk { req, existed, hops } => {
                if self.pending.remove(&req).is_some() {
                    self.close_req_span(req, now, hops, true, false);
                    self.events.push_back(DhtEvent::DeleteCompleted {
                        req,
                        result: Ok(existed),
                        hops,
                    });
                }
            }
            Message::Expunge { key } => {
                self.replicas.remove(key);
                self.cache.invalidate(key);
            }
            Message::Replicate { key, value } => {
                self.replicas.install(key, value);
            }
            Message::Ping { from: prober } => {
                self.send(prober, Message::Pong { from: self.id });
            }
            Message::Pong { from: responder } => {
                if let Some(state) = self.peers.get_mut(&responder) {
                    state.awaiting_pong = false;
                    state.missed = 0;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Put message fields
    fn handle_put(
        &mut self,
        req: ReqId,
        origin: Key,
        key: Key,
        data: Vec<u8>,
        policy: OverwritePolicy,
        hops: u8,
        _now: SimTime,
    ) {
        let decision = if hops >= self.config.max_hops {
            NextHop::Deliver
        } else {
            route(self.id, key, &self.leaf, &self.table, &self.peers)
        };
        match decision {
            NextHop::Deliver => {
                let result = self.store.put(key, data, policy);
                match result {
                    Ok(version) => {
                        let value = self.store.get(key).expect("just stored").clone();
                        self.replicate_record(key, value);
                        let reply = Message::PutOk {
                            req,
                            version,
                            hops: hops + 1,
                        };
                        self.reply_to(origin, reply);
                    }
                    Err(e) => {
                        let reply = Message::PutFailed {
                            req,
                            error: e,
                            hops: hops + 1,
                        };
                        self.reply_to(origin, reply);
                    }
                }
            }
            NextHop::Forward(next) => {
                // Keep any cached copy coherent with the update passing by.
                self.cache.update_in_place(key, &data, policy);
                self.send(
                    next,
                    Message::Put {
                        req,
                        origin,
                        key,
                        data,
                        policy,
                        hops: hops + 1,
                    },
                );
            }
        }
    }

    fn handle_delete(&mut self, req: ReqId, origin: Key, key: Key, hops: u8) {
        let decision = if hops >= self.config.max_hops {
            NextHop::Deliver
        } else {
            route(self.id, key, &self.leaf, &self.table, &self.peers)
        };
        match decision {
            NextHop::Deliver => {
                let existed =
                    self.store.remove(key).is_some() | self.replicas.remove(key).is_some();
                self.cache.invalidate(key);
                // Tombstone replicas and any caches on the reply path.
                for target in self.leaf.replica_targets(self.config.replication) {
                    self.send(target, Message::Expunge { key });
                }
                let reply = Message::DeleteOk {
                    req,
                    existed,
                    hops: hops + 1,
                };
                self.reply_to(origin, reply);
            }
            NextHop::Forward(next) => {
                // Drop any cached copy of a record being removed.
                self.cache.invalidate(key);
                self.send(
                    next,
                    Message::Delete {
                        req,
                        origin,
                        key,
                        hops: hops + 1,
                    },
                );
            }
        }
    }

    /// Sends a reply, handling the origin-is-self case without the network.
    fn reply_to(&mut self, origin: Key, msg: Message) {
        if origin == self.id {
            let from = self.id;
            // `now` is irrelevant for completion messages.
            self.process(from, msg, SimTime::ZERO);
        } else {
            self.send(origin, msg);
        }
    }

    fn handle_get(&mut self, req: ReqId, origin: Key, key: Key, path: Vec<Key>, _now: SimTime) {
        let decision = if path.len() as u8 >= self.config.max_hops {
            NextHop::Deliver
        } else {
            route(self.id, key, &self.leaf, &self.table, &self.peers)
        };
        match decision {
            NextHop::Deliver => {
                let value = self.local_get(key).cloned();
                let pos = path.len().saturating_sub(1);
                self.send_get_reply(req, key, value, false, path, pos);
            }
            NextHop::Forward(next) => {
                // Intermediate cache: answer without routing further.
                if self.id != origin {
                    if let Some(cached) = self.cache.lookup(key) {
                        self.stats.cache_answers += 1;
                        let pos = path.len().saturating_sub(1);
                        self.send_get_reply(req, key, Some(cached), true, path, pos);
                        return;
                    }
                }
                let mut path = path;
                if *path.last().expect("path contains at least origin") != self.id {
                    path.push(self.id);
                }
                self.send(
                    next,
                    Message::Get {
                        req,
                        origin,
                        key,
                        path,
                    },
                );
            }
        }
    }

    fn send_get_reply(
        &mut self,
        req: ReqId,
        key: Key,
        value: Option<StoredValue>,
        from_cache: bool,
        path: Vec<Key>,
        path_pos: usize,
    ) {
        let hops = path.len() as u8;
        let msg = Message::GetReply {
            req,
            key,
            value,
            from_cache,
            path: path.clone(),
            path_pos,
            hops,
        };
        let target = path[path_pos];
        if target == self.id {
            self.process_local(msg, SimTime::ZERO);
        } else {
            self.send(target, msg);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_get_reply(
        &mut self,
        req: ReqId,
        key: Key,
        value: Option<StoredValue>,
        from_cache: bool,
        path: Vec<Key>,
        path_pos: usize,
        hops: u8,
        now: SimTime,
    ) {
        // Cache the entry at every hop on the reply path ("key-value entries
        // are cached onto intermediate hops on each request's path").
        if let Some(v) = &value {
            self.cache.insert(key, v.clone());
        }
        if path_pos == 0 {
            // We are the origin.
            if self.pending.remove(&req).is_some() {
                self.stats.lookup_hops += hops as u64;
                self.close_req_span(req, now, hops, true, true);
                self.events.push_back(DhtEvent::GetCompleted {
                    req,
                    key,
                    value,
                    from_cache,
                    hops,
                    result: Ok(()),
                });
            }
            return;
        }
        let next = path[path_pos - 1];
        let msg = Message::GetReply {
            req,
            key,
            value,
            from_cache,
            path,
            path_pos: path_pos - 1,
            hops: hops + 1,
        };
        if next == self.id {
            self.process_local(msg, SimTime::ZERO);
        } else {
            self.send(next, msg);
        }
    }

    /// Adds a peer without flooding or view rebuilds (bulk Welcome import).
    fn learn_peer_quiet(&mut self, node: Key, incarnation: u32) -> bool {
        if node == self.id {
            return false;
        }
        if self.retired.get(&node).copied() >= Some(incarnation) {
            return false;
        }
        match self.peers.get_mut(&node) {
            Some(state) => {
                if state.incarnation >= incarnation {
                    return false;
                }
                state.incarnation = incarnation;
                state.awaiting_pong = false;
                state.missed = 0;
                true
            }
            None => {
                self.peers.insert(
                    node,
                    PeerState {
                        incarnation,
                        awaiting_pong: false,
                        missed: 0,
                    },
                );
                self.table.add(node);
                true
            }
        }
    }

    /// Adds a peer, rebuilds views, propagates the announcement, and hands
    /// over records whose root moved.
    fn learn_peer(&mut self, node: Key, incarnation: u32, exclude: Option<Key>, _now: SimTime) {
        if !self.learn_peer_quiet(node, incarnation) {
            return;
        }
        // The leaf set is a pure function of (owner, ordered peers, size):
        // when both sides are already full and the new node falls outside
        // the covered ring interval, a rebuild reproduces the identical
        // leaf set. Announce floods visit every node for every join, so
        // skipping the redundant O(leaf_size · log n) tree walks here is
        // the difference between a linear and a quadratic-feeling join.
        // `covers` describes the arc lo→owner→hi only when the two sides
        // are disjoint, which needs strictly more pre-insert peers than
        // leaf slots (on tiny rings the sides wrap and overlap) — hence
        // the strict `>` against the post-insert count.
        let leaf_unchanged = self.peers.len() > 2 * self.config.leaf_size
            && self.leaf.left().len() == self.config.leaf_size
            && self.leaf.right().len() == self.config.leaf_size
            && !self.leaf.covers(self.id, node);
        if !leaf_unchanged {
            self.rebuild_views();
        } else if cfg!(debug_assertions) {
            let before = self.leaf.clone();
            self.rebuild_views();
            debug_assert!(
                before.left() == self.leaf.left() && before.right() == self.leaf.right(),
                "leaf skip was not a no-op: node={node} owner={} before=({:?},{:?}) after=({:?},{:?})",
                self.id,
                before.left(),
                before.right(),
                self.leaf.left(),
                self.leaf.right(),
            );
        }
        self.events.push_back(DhtEvent::PeerJoined { node });
        // Propagate along the ring ("it sends a message to its right and
        // left nodes in the logical tree structure").
        for n in self.leaf.immediate_neighbors() {
            if Some(n) != exclude && n != node {
                self.send(n, Message::Announce { node, incarnation });
            }
        }
        // Redistribute records the new node now owns; keep local replicas.
        // With nothing stored there is nothing to move or re-replicate, so
        // skip materializing the O(peers) membership vector — announce
        // floods hit every node for every join, and this is their hot path.
        if !self.store.is_empty() {
            let peers_and_self: Vec<Key> = self
                .peers
                .keys()
                .copied()
                .chain(std::iter::once(self.id))
                .collect();
            let moved = self
                .store
                .drain_matching(|k| root_of(k, peers_and_self.iter().copied()) == Some(node));
            if !moved.is_empty() {
                for (k, v) in &moved {
                    self.replicas.install(*k, v.clone());
                }
                self.send(node, Message::KeyTransfer { records: moved });
            }
            self.refresh_replication();
        }
    }

    fn retire_peer(&mut self, node: Key, incarnation: u32, failed: bool, now: SimTime) {
        if node == self.id {
            // Refutation: we are alive but someone declared us failed.
            // Bump our incarnation past the retirement and re-announce
            // (SWIM's alive-refutes-suspect rule).
            if self.joined && incarnation >= self.incarnation {
                self.incarnation = incarnation + 1;
                for n in self.leaf.immediate_neighbors() {
                    self.send(
                        n,
                        Message::Announce {
                            node: self.id,
                            incarnation: self.incarnation,
                        },
                    );
                }
            }
            return;
        }
        let known = match self.peers.get(&node) {
            Some(state) => state.incarnation <= incarnation,
            None => false,
        };
        let already_retired = self.retired.get(&node).copied() >= Some(incarnation);
        if already_retired || !known {
            self.retired
                .entry(node)
                .and_modify(|i| *i = (*i).max(incarnation))
                .or_insert(incarnation);
            return;
        }
        self.retired.insert(node, incarnation);
        self.peers.remove(&node);
        self.table.remove(node);
        self.rebuild_views();
        self.events.push_back(if failed {
            DhtEvent::PeerFailed { node }
        } else {
            DhtEvent::PeerRetired { node }
        });
        for n in self.leaf.immediate_neighbors() {
            self.send(n, Message::Retire { node, incarnation });
        }
        self.promote_orphaned_replicas(now);
        self.refresh_replication();
    }

    fn declare_failed(&mut self, node: Key, incarnation: u32, now: SimTime) {
        self.retire_peer(node, incarnation, true, now);
    }

    /// Adopts replicas whose root has vanished and is now this node.
    fn promote_orphaned_replicas(&mut self, _now: SimTime) {
        let peers_and_self: Vec<Key> = self
            .peers
            .keys()
            .copied()
            .chain(std::iter::once(self.id))
            .collect();
        let mine = self
            .replicas
            .drain_matching(|k| root_of(k, peers_and_self.iter().copied()) == Some(self.id));
        for (k, v) in mine {
            self.store.install(k, v.clone());
            self.replicate_record(k, v);
        }
    }

    /// Pushes a record to its replica targets.
    fn replicate_record(&mut self, key: Key, value: StoredValue) {
        for target in self.leaf.replica_targets(self.config.replication) {
            self.send(
                target,
                Message::Replicate {
                    key,
                    value: value.clone(),
                },
            );
        }
    }

    /// Re-replicates every owned record (after membership changes).
    fn refresh_replication(&mut self) {
        let mut records: Vec<(Key, StoredValue)> =
            self.store.iter().map(|(k, v)| (k, v.clone())).collect();
        // Deterministic send order across same-seed runs.
        records.sort_unstable_by_key(|(k, _)| *k);
        for (k, v) in records {
            self.replicate_record(k, v);
        }
    }

    fn rebuild_views(&mut self) {
        self.leaf
            .rebuild(self.id, &self.peers, self.config.leaf_size);
    }

    fn expire_pending(&mut self, now: SimTime) {
        let mut expired: Vec<(ReqId, Pending)> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(r, p)| (*r, p.clone()))
            .collect();
        // Retransmissions must fire in the same order across same-seed runs.
        expired.sort_unstable_by_key(|(r, _)| *r);
        for (req, p) in expired {
            self.pending.remove(&req);
            if !matches!(p.kind, PendingKind::Join) {
                self.close_req_span(req, now, 0, false, false);
            }
            match p.kind {
                PendingKind::Join => self.events.push_back(DhtEvent::JoinFailed),
                PendingKind::Put => self.events.push_back(DhtEvent::PutCompleted {
                    req,
                    result: Err(DhtError::Timeout),
                    hops: 0,
                }),
                PendingKind::Delete => self.events.push_back(DhtEvent::DeleteCompleted {
                    req,
                    result: Err(DhtError::Timeout),
                    hops: 0,
                }),
                PendingKind::Get { key } => self.events.push_back(DhtEvent::GetCompleted {
                    req,
                    key,
                    value: None,
                    from_cache: false,
                    hops: 0,
                    result: Err(DhtError::Timeout),
                }),
            }
        }
    }
}
