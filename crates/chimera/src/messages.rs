//! Overlay wire messages.
//!
//! All inter-node communication in the overlay is expressed as [`Message`]s
//! wrapped in [`Envelope`]s. The state machine in [`crate::node`] consumes
//! and produces envelopes; the simulation runtime (or any other transport)
//! moves them between nodes.

use serde::{Deserialize, Serialize};

use crate::key::Key;
use crate::store::{OverwritePolicy, PutError, StoredValue};

/// Correlates a request with its completion event at the origin node.
pub type ReqId = u64;

/// A message in flight between two overlay nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sending node's overlay ID.
    pub from: Key,
    /// Receiving node's overlay ID.
    pub to: Key,
    /// The payload.
    pub msg: Message,
}

/// Overlay protocol messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// A joining node asks a seed for the current membership.
    WelcomeRequest {
        /// The joiner's overlay ID.
        joiner: Key,
        /// The joiner's incarnation number.
        incarnation: u32,
    },
    /// Membership snapshot returned to a joiner.
    Welcome {
        /// Known peers and their incarnations (including the seed).
        peers: Vec<(Key, u32)>,
    },
    /// Gossip: a node has joined. Propagated along ring neighbours.
    Announce {
        /// The new node.
        node: Key,
        /// Its incarnation number (deduplicates re-joins).
        incarnation: u32,
    },
    /// Gossip: a node has left or been declared failed.
    Retire {
        /// The departed node.
        node: Key,
        /// The incarnation being retired.
        incarnation: u32,
    },
    /// Records handed to their new root during redistribution.
    KeyTransfer {
        /// The records changing owner.
        records: Vec<(Key, StoredValue)>,
    },
    /// A value update being routed to the key's root.
    Put {
        /// Request correlation at the origin.
        req: ReqId,
        /// The node awaiting the acknowledgement.
        origin: Key,
        /// The record key.
        key: Key,
        /// The new value bytes.
        data: Vec<u8>,
        /// What to do if the key already exists.
        policy: OverwritePolicy,
        /// Hops taken so far.
        hops: u8,
    },
    /// Acknowledgement of a successful `Put`.
    PutOk {
        /// Request correlation at the origin.
        req: ReqId,
        /// Resulting record version at the root.
        version: u64,
        /// Total routing hops.
        hops: u8,
    },
    /// A `Put` rejected by the root.
    PutFailed {
        /// Request correlation at the origin.
        req: ReqId,
        /// Why the root rejected it.
        error: PutError,
        /// Total routing hops.
        hops: u8,
    },
    /// A lookup being routed to the key's root.
    Get {
        /// Request correlation at the origin.
        req: ReqId,
        /// The node awaiting the reply.
        origin: Key,
        /// The record key.
        key: Key,
        /// Nodes traversed so far (origin first); the reply retraces this
        /// path so intermediate hops can cache the entry.
        path: Vec<Key>,
    },
    /// A lookup result retracing the request path.
    GetReply {
        /// Request correlation at the origin.
        req: ReqId,
        /// The record key.
        key: Key,
        /// The value, if the root holds one.
        value: Option<StoredValue>,
        /// Whether an intermediate cache answered.
        from_cache: bool,
        /// The request path being retraced.
        path: Vec<Key>,
        /// Index into `path` of the node this reply is currently visiting.
        path_pos: usize,
        /// Total hops (request + reply legs).
        hops: u8,
    },
    /// A deletion being routed to the key's root.
    Delete {
        /// Request correlation at the origin.
        req: ReqId,
        /// The node awaiting the acknowledgement.
        origin: Key,
        /// The record key to remove.
        key: Key,
        /// Hops taken so far.
        hops: u8,
    },
    /// Acknowledgement of a `Delete`.
    DeleteOk {
        /// Request correlation at the origin.
        req: ReqId,
        /// Whether a record existed and was removed.
        existed: bool,
        /// Total routing hops.
        hops: u8,
    },
    /// Root-to-replica tombstone propagation: drop any replica and cached
    /// copy of the key.
    Expunge {
        /// The removed record's key.
        key: Key,
    },
    /// Root-to-replica record propagation.
    Replicate {
        /// The record key.
        key: Key,
        /// The full record.
        value: StoredValue,
    },
    /// Liveness probe between ring neighbours.
    Ping {
        /// Prober.
        from: Key,
    },
    /// Liveness response.
    Pong {
        /// Responder.
        from: Key,
    },
}

impl Message {
    /// Short message-type label for traces and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::WelcomeRequest { .. } => "welcome_request",
            Message::Welcome { .. } => "welcome",
            Message::Announce { .. } => "announce",
            Message::Retire { .. } => "retire",
            Message::KeyTransfer { .. } => "key_transfer",
            Message::Put { .. } => "put",
            Message::PutOk { .. } => "put_ok",
            Message::PutFailed { .. } => "put_failed",
            Message::Get { .. } => "get",
            Message::GetReply { .. } => "get_reply",
            Message::Delete { .. } => "delete",
            Message::DeleteOk { .. } => "delete_ok",
            Message::Expunge { .. } => "expunge",
            Message::Replicate { .. } => "replicate",
            Message::Ping { .. } => "ping",
            Message::Pong { .. } => "pong",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_are_distinct() {
        let msgs = [
            Message::Ping { from: Key::MIN },
            Message::Pong { from: Key::MIN },
            Message::Announce {
                node: Key::MIN,
                incarnation: 0,
            },
        ];
        let kinds: Vec<&str> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds, vec!["ping", "pong", "announce"]);
    }
}
