//! The per-node key-value record store and metadata cache.
//!
//! Each DHT root holds [`StoredValue`]s for the keys it owns. Updates carry
//! an [`OverwritePolicy`] — the paper: "Updates to Chimera have an overwrite
//! policy value that determines if the metadata needs to be overwritten, if
//! newer version of metadata is to be added by chaining, or if an error
//! should be returned."
//!
//! Intermediate hops on a request's path keep a bounded [`MetaCache`] of
//! key-value entries; entries are refreshed when newer versions pass through
//! and evicted FIFO when the cache is full.

use std::collections::VecDeque;

use c4h_simnet::FxHashMap;

use serde::{Deserialize, Serialize};

use crate::key::Key;

/// What a `put` should do when the key already holds a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverwritePolicy {
    /// Replace the stored value.
    Overwrite,
    /// Append the new value as a new version, keeping the chain.
    Chain,
    /// Fail with [`PutError::Exists`].
    Error,
}

/// Error returned by a rejected `put`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PutError {
    /// The key already exists and the policy was [`OverwritePolicy::Error`].
    Exists,
}

impl std::fmt::Display for PutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PutError::Exists => write!(f, "key already exists"),
        }
    }
}

impl std::error::Error for PutError {}

/// A stored record: the chain of versions plus a monotonically increasing
/// version counter used for cache freshness.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoredValue {
    versions: Vec<Vec<u8>>,
    version: u64,
}

impl StoredValue {
    /// Creates a record holding a single initial version.
    pub fn initial(data: Vec<u8>) -> Self {
        StoredValue {
            versions: vec![data],
            version: 1,
        }
    }

    /// The newest version's bytes.
    pub fn latest(&self) -> &[u8] {
        self.versions.last().map(Vec::as_slice).unwrap_or(&[])
    }

    /// All versions, oldest first (length 1 unless chained).
    pub fn versions(&self) -> &[Vec<u8>] {
        &self.versions
    }

    /// The record's version counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Applies an update under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`PutError::Exists`] under [`OverwritePolicy::Error`] when a
    /// value is already present.
    pub fn apply(&mut self, data: Vec<u8>, policy: OverwritePolicy) -> Result<(), PutError> {
        match policy {
            OverwritePolicy::Overwrite => {
                self.versions = vec![data];
            }
            OverwritePolicy::Chain => {
                self.versions.push(data);
            }
            OverwritePolicy::Error => return Err(PutError::Exists),
        }
        self.version += 1;
        Ok(())
    }
}

/// The records a node owns as DHT root.
#[derive(Debug, Clone, Default)]
pub struct LocalStore {
    records: FxHashMap<Key, StoredValue>,
}

impl LocalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        LocalStore::default()
    }

    /// Number of owned records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no records are owned.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a record.
    pub fn get(&self, key: Key) -> Option<&StoredValue> {
        self.records.get(&key)
    }

    /// Applies a `put` under the given policy, returning the resulting
    /// record version.
    ///
    /// # Errors
    ///
    /// Returns [`PutError::Exists`] under [`OverwritePolicy::Error`] when the
    /// key is already present.
    pub fn put(
        &mut self,
        key: Key,
        data: Vec<u8>,
        policy: OverwritePolicy,
    ) -> Result<u64, PutError> {
        match self.records.get_mut(&key) {
            Some(v) => {
                v.apply(data, policy)?;
                Ok(v.version())
            }
            None => {
                let v = StoredValue::initial(data);
                let version = v.version();
                self.records.insert(key, v);
                Ok(version)
            }
        }
    }

    /// Installs a full record (replica adoption / key transfer), keeping the
    /// newer version if one already exists.
    pub fn install(&mut self, key: Key, value: StoredValue) {
        match self.records.get_mut(&key) {
            Some(existing) if existing.version() >= value.version() => {}
            _ => {
                self.records.insert(key, value);
            }
        }
    }

    /// Removes and returns a record.
    pub fn remove(&mut self, key: Key) -> Option<StoredValue> {
        self.records.remove(&key)
    }

    /// Iterates over all owned records.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &StoredValue)> {
        self.records.iter().map(|(k, v)| (*k, v))
    }

    /// Drains records selected by the predicate (used for key
    /// redistribution when membership changes).
    pub fn drain_matching<F>(&mut self, mut pred: F) -> Vec<(Key, StoredValue)>
    where
        F: FnMut(Key) -> bool,
    {
        // Key order, not hash-map order: callers forward these records to
        // peers, and the send order must be identical across same-seed runs.
        let mut keys: Vec<Key> = self.records.keys().copied().filter(|&k| pred(k)).collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|k| (k, self.records.remove(&k).expect("key just listed")))
            .collect()
    }
}

/// Bounded FIFO cache of key-value entries held at intermediate hops.
#[derive(Debug, Clone)]
pub struct MetaCache {
    capacity: usize,
    entries: FxHashMap<Key, StoredValue>,
    order: VecDeque<Key>,
    hits: u64,
    misses: u64,
}

impl MetaCache {
    /// Creates a cache bounded to `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        MetaCache {
            capacity,
            entries: FxHashMap::default(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up a cached value, recording hit/miss statistics.
    pub fn lookup(&mut self, key: Key) -> Option<StoredValue> {
        match self.entries.get(&key) {
            Some(v) => {
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts or refreshes an entry; stale versions never replace newer
    /// ones.
    pub fn insert(&mut self, key: Key, value: StoredValue) {
        if self.capacity == 0 {
            return;
        }
        if let Some(existing) = self.entries.get(&key) {
            if existing.version() >= value.version() {
                return;
            }
            self.entries.insert(key, value);
            return;
        }
        while self.entries.len() >= self.capacity {
            let Some(evict) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&evict);
        }
        self.entries.insert(key, value);
        self.order.push_back(key);
    }

    /// Applies an update flowing through this hop to an existing cache entry
    /// ("whenever a key-value entry is modified, the corresponding caches
    /// are also updated"). Entries not present are not created.
    pub fn update_in_place(&mut self, key: Key, data: &[u8], policy: OverwritePolicy) {
        if let Some(v) = self.entries.get_mut(&key) {
            // A failed apply under `Error` means the cached copy is current.
            let _ = v.apply(data.to_vec(), policy);
        }
    }

    /// Drops an entry.
    pub fn invalidate(&mut self, key: Key) {
        self.entries.remove(&key);
        self.order.retain(|&k| k != key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u64) -> Key {
        Key::from_raw(n)
    }

    #[test]
    fn overwrite_replaces_value() {
        let mut s = LocalStore::new();
        s.put(k(1), b"a".to_vec(), OverwritePolicy::Overwrite)
            .unwrap();
        let v2 = s
            .put(k(1), b"b".to_vec(), OverwritePolicy::Overwrite)
            .unwrap();
        assert_eq!(v2, 2);
        let rec = s.get(k(1)).unwrap();
        assert_eq!(rec.latest(), b"b");
        assert_eq!(rec.versions().len(), 1);
    }

    #[test]
    fn chain_appends_versions() {
        let mut s = LocalStore::new();
        s.put(k(1), b"a".to_vec(), OverwritePolicy::Chain).unwrap();
        s.put(k(1), b"b".to_vec(), OverwritePolicy::Chain).unwrap();
        let rec = s.get(k(1)).unwrap();
        assert_eq!(rec.versions().len(), 2);
        assert_eq!(rec.latest(), b"b");
        assert_eq!(rec.versions()[0], b"a");
    }

    #[test]
    fn error_policy_rejects_existing() {
        let mut s = LocalStore::new();
        s.put(k(1), b"a".to_vec(), OverwritePolicy::Error).unwrap();
        let err = s
            .put(k(1), b"b".to_vec(), OverwritePolicy::Error)
            .unwrap_err();
        assert_eq!(err, PutError::Exists);
        assert_eq!(s.get(k(1)).unwrap().latest(), b"a");
        // Fresh keys are accepted.
        s.put(k(2), b"c".to_vec(), OverwritePolicy::Error).unwrap();
    }

    #[test]
    fn install_keeps_newer_version() {
        let mut s = LocalStore::new();
        s.put(k(1), b"a".to_vec(), OverwritePolicy::Overwrite)
            .unwrap();
        s.put(k(1), b"b".to_vec(), OverwritePolicy::Overwrite)
            .unwrap();
        // An older replica must not clobber the newer record.
        s.install(k(1), StoredValue::initial(b"old".to_vec()));
        assert_eq!(s.get(k(1)).unwrap().latest(), b"b");
        // A newer record replaces.
        let mut newer = StoredValue::initial(b"x".to_vec());
        for _ in 0..5 {
            newer
                .apply(b"y".to_vec(), OverwritePolicy::Overwrite)
                .unwrap();
        }
        s.install(k(1), newer.clone());
        assert_eq!(s.get(k(1)).unwrap().version(), newer.version());
    }

    #[test]
    fn drain_matching_moves_records() {
        let mut s = LocalStore::new();
        for i in 0..10 {
            s.put(k(i), vec![i as u8], OverwritePolicy::Overwrite)
                .unwrap();
        }
        let drained = s.drain_matching(|key| key.raw() % 2 == 0);
        assert_eq!(drained.len(), 5);
        assert_eq!(s.len(), 5);
        assert!(s.get(k(0)).is_none());
        assert!(s.get(k(1)).is_some());
    }

    #[test]
    fn cache_hits_and_misses_counted() {
        let mut c = MetaCache::new(4);
        assert!(c.lookup(k(1)).is_none());
        c.insert(k(1), StoredValue::initial(b"v".to_vec()));
        assert_eq!(c.lookup(k(1)).unwrap().latest(), b"v");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn cache_evicts_fifo() {
        let mut c = MetaCache::new(2);
        c.insert(k(1), StoredValue::initial(vec![1]));
        c.insert(k(2), StoredValue::initial(vec![2]));
        c.insert(k(3), StoredValue::initial(vec![3]));
        assert!(c.lookup(k(1)).is_none(), "oldest entry evicted");
        assert!(c.lookup(k(2)).is_some());
        assert!(c.lookup(k(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cache_never_downgrades_versions() {
        let mut c = MetaCache::new(4);
        let mut newer = StoredValue::initial(vec![1]);
        newer.apply(vec![2], OverwritePolicy::Overwrite).unwrap();
        c.insert(k(1), newer.clone());
        c.insert(k(1), StoredValue::initial(vec![9]));
        assert_eq!(c.lookup(k(1)).unwrap(), newer);
    }

    #[test]
    fn cache_update_in_place_only_touches_existing() {
        let mut c = MetaCache::new(4);
        c.update_in_place(k(1), b"x", OverwritePolicy::Overwrite);
        assert!(c.is_empty());
        c.insert(k(1), StoredValue::initial(b"a".to_vec()));
        c.update_in_place(k(1), b"b", OverwritePolicy::Overwrite);
        assert_eq!(c.lookup(k(1)).unwrap().latest(), b"b");
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut c = MetaCache::new(0);
        c.insert(k(1), StoredValue::initial(vec![1]));
        assert!(c.lookup(k(1)).is_none());
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = MetaCache::new(2);
        c.insert(k(1), StoredValue::initial(vec![1]));
        c.invalidate(k(1));
        assert!(c.lookup(k(1)).is_none());
        // Room freed: inserting two more keeps both.
        c.insert(k(2), StoredValue::initial(vec![2]));
        c.insert(k(3), StoredValue::initial(vec![3]));
        assert_eq!(c.len(), 2);
    }
}
