//! Prefix routing table and leaf set.
//!
//! Chimera provides "functionality to that of prefix routing protocols like
//! Tapestry and Pastry": a message for key *k* is forwarded to a node whose
//! ID shares a longer hex-digit prefix with *k* than the current node, and a
//! *leaf set* of ring neighbours handles final numeric delivery. This module
//! implements both structures over the 40-bit key space.

use crate::key::{Key, KEY_DIGITS};
use crate::rbtree::RbTree;

/// Number of columns per routing-table row (one per hex digit value).
pub const ROW_WIDTH: usize = 16;

/// A Pastry-style prefix routing table.
///
/// Row `r`, column `c` holds a node whose ID shares exactly `r` leading
/// digits with the owner and whose digit `r` equals `c`.
///
/// # Examples
///
/// ```
/// use c4h_chimera::{Key, RoutingTable};
///
/// let owner = Key::from_raw(0x1234567890);
/// let mut rt = RoutingTable::new(owner);
/// let peer = Key::from_raw(0x1239000000); // shares 3 digits, digit 3 = 9
/// rt.add(peer);
/// assert_eq!(rt.next_hop(Key::from_raw(0x1239ABCDEF)), Some(peer));
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    owner: Key,
    rows: Vec<[Option<Key>; ROW_WIDTH]>,
}

impl RoutingTable {
    /// Creates an empty table for `owner`.
    pub fn new(owner: Key) -> Self {
        RoutingTable {
            owner,
            rows: vec![[None; ROW_WIDTH]; KEY_DIGITS],
        }
    }

    /// The node this table belongs to.
    pub fn owner(&self) -> Key {
        self.owner
    }

    /// Records a peer in its prefix slot.
    ///
    /// An occupied slot is replaced only if the new peer is numerically
    /// closer to the owner (a cheap stand-in for Pastry's proximity metric).
    /// Adding the owner itself is a no-op.
    pub fn add(&mut self, peer: Key) {
        if peer == self.owner {
            return;
        }
        let row = self.owner.shared_prefix_len(peer);
        debug_assert!(row < KEY_DIGITS, "distinct keys share < KEY_DIGITS digits");
        let col = peer.digit(row) as usize;
        let slot = &mut self.rows[row][col];
        match slot {
            None => *slot = Some(peer),
            Some(existing) => {
                if peer.ring_distance(self.owner) < existing.ring_distance(self.owner) {
                    *slot = Some(peer);
                }
            }
        }
    }

    /// Removes a peer wherever it appears.
    pub fn remove(&mut self, peer: Key) {
        for row in &mut self.rows {
            for slot in row.iter_mut() {
                if *slot == Some(peer) {
                    *slot = None;
                }
            }
        }
    }

    /// The prefix-routing next hop for `key`: a node sharing at least one
    /// more leading digit with `key` than the owner does.
    pub fn next_hop(&self, key: Key) -> Option<Key> {
        let row = self.owner.shared_prefix_len(key);
        if row >= KEY_DIGITS {
            return None; // key == owner
        }
        self.rows[row][key.digit(row) as usize]
    }

    /// All peers currently in the table.
    pub fn entries(&self) -> impl Iterator<Item = Key> + '_ {
        self.rows.iter().flatten().filter_map(|s| *s)
    }
}

/// The leaf set: the owner's nearest ring neighbours on each side.
///
/// Rebuilt from the ordered peer view (the red-black tree) whenever
/// membership changes; used for final-hop delivery, join/leave
/// announcements, and replica placement.
#[derive(Debug, Clone, Default)]
pub struct LeafSet {
    /// Counter-clockwise neighbours, nearest first.
    left: Vec<Key>,
    /// Clockwise neighbours, nearest first.
    right: Vec<Key>,
}

impl LeafSet {
    /// Creates an empty leaf set.
    pub fn new() -> Self {
        LeafSet::default()
    }

    /// Rebuilds both sides from the ordered peer view.
    ///
    /// `peers` must not contain `owner`. Each side holds up to
    /// `size_per_side` distinct nodes; with few peers the sides may overlap
    /// (the same node can be both nearest-left and nearest-right on a small
    /// ring).
    pub fn rebuild<V>(&mut self, owner: Key, peers: &RbTree<Key, V>, size_per_side: usize) {
        self.left.clear();
        self.right.clear();
        if peers.is_empty() {
            return;
        }
        // Clockwise (right): successors of owner, wrapping at the ring top.
        let mut cur = owner;
        for _ in 0..size_per_side.min(peers.len()) {
            let next = peers
                .next_after(&cur)
                .or_else(|| peers.min())
                .map(|(k, _)| *k)
                .expect("peers is non-empty");
            if next == owner || self.right.contains(&next) {
                break;
            }
            self.right.push(next);
            cur = next;
        }
        // Counter-clockwise (left): predecessors, wrapping at the ring bottom.
        let mut cur = owner;
        for _ in 0..size_per_side.min(peers.len()) {
            let prev = peers
                .prev_before(&cur)
                .or_else(|| peers.max())
                .map(|(k, _)| *k)
                .expect("peers is non-empty");
            if prev == owner || self.left.contains(&prev) {
                break;
            }
            self.left.push(prev);
            cur = prev;
        }
    }

    /// Nearest counter-clockwise neighbours, nearest first.
    pub fn left(&self) -> &[Key] {
        &self.left
    }

    /// Nearest clockwise neighbours, nearest first.
    pub fn right(&self) -> &[Key] {
        &self.right
    }

    /// The immediate neighbours (one per side, deduplicated) that join/leave
    /// announcements are sent to.
    pub fn immediate_neighbors(&self) -> Vec<Key> {
        let mut out = Vec::with_capacity(2);
        if let Some(&l) = self.left.first() {
            out.push(l);
        }
        if let Some(&r) = self.right.first() {
            if !out.contains(&r) {
                out.push(r);
            }
        }
        out
    }

    /// Whether `key` falls inside the ring interval spanned by the leaf set
    /// (from the farthest left member, through `owner`, to the farthest
    /// right member). Inside this interval the numerically closest leaf (or
    /// the owner) is guaranteed to be the key's root, because the leaf set
    /// contains *every* node in the interval.
    pub fn covers(&self, owner: Key, key: Key) -> bool {
        let lo = self.left.last().copied().unwrap_or(owner);
        let hi = self.right.last().copied().unwrap_or(owner);
        lo.clockwise_distance(key) <= lo.clockwise_distance(hi)
    }

    /// Members of both sides, deduplicated, nearest first per side.
    pub fn members(&self) -> Vec<Key> {
        let mut out = self.left.clone();
        for &r in &self.right {
            if !out.contains(&r) {
                out.push(r);
            }
        }
        out
    }

    /// Replica targets for a record rooted at the owner: the `n` nearest
    /// distinct neighbours, alternating sides.
    pub fn replica_targets(&self, n: usize) -> Vec<Key> {
        let mut out = Vec::new();
        let mut li = self.right.iter();
        let mut ri = self.left.iter();
        while out.len() < n {
            let mut advanced = false;
            if let Some(&k) = li.next() {
                if !out.contains(&k) {
                    out.push(k);
                }
                advanced = true;
            }
            if out.len() >= n {
                break;
            }
            if let Some(&k) = ri.next() {
                if !out.contains(&k) {
                    out.push(k);
                }
                advanced = true;
            }
            if !advanced {
                break;
            }
        }
        out.truncate(n);
        out
    }
}

/// The routing decision for a key at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// This node is the key's root; deliver locally.
    Deliver,
    /// Forward to the given node.
    Forward(Key),
}

/// Computes the next hop for `key` at `owner`.
///
/// Order of preference, mirroring Pastry:
/// 1. if `key` falls within the leaf-set interval, deliver to the
///    numerically closest of the owner and its leaves (final delivery);
/// 2. otherwise forward along the prefix routing table (each hop shares a
///    strictly longer digit prefix with the key);
/// 3. otherwise fall back to the closest node in the full membership view
///    (the red-black tree), which strictly decreases ring distance.
pub fn route<V>(
    owner: Key,
    key: Key,
    leaf: &LeafSet,
    table: &RoutingTable,
    peers: &RbTree<Key, V>,
) -> NextHop {
    if peers.is_empty() {
        return NextHop::Deliver;
    }
    // Final delivery via the leaf set.
    if leaf.covers(owner, key) {
        let best = crate::key::root_of(
            key,
            leaf.members().into_iter().chain(std::iter::once(owner)),
        )
        .expect("owner is always a candidate");
        return if best == owner {
            NextHop::Deliver
        } else {
            NextHop::Forward(best)
        };
    }
    // Prefix routing step: guaranteed prefix progress.
    if let Some(hop) = table.next_hop(key) {
        return NextHop::Forward(hop);
    }
    // Fallback on the complete logical tree view.
    let best_known = crate::key::root_of(key, peers.keys().copied().chain(std::iter::once(owner)))
        .expect("at least the owner is a candidate");
    if best_known == owner {
        NextHop::Deliver
    } else {
        NextHop::Forward(best_known)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(keys: &[u64]) -> RbTree<Key, ()> {
        keys.iter().map(|&k| (Key::from_raw(k), ())).collect()
    }

    #[test]
    fn routing_table_slots_by_prefix() {
        let owner = Key::from_raw(0x0000000000);
        let mut rt = RoutingTable::new(owner);
        let p1 = Key::from_raw(0x1000000000); // row 0, col 1
        let p2 = Key::from_raw(0x0100000000); // row 1, col 1
        rt.add(p1);
        rt.add(p2);
        rt.add(owner); // no-op
        assert_eq!(rt.next_hop(Key::from_raw(0x1FFFFFFFFF)), Some(p1));
        assert_eq!(rt.next_hop(Key::from_raw(0x01FFFFFFFF)), Some(p2));
        assert_eq!(rt.next_hop(Key::from_raw(0x2000000000)), None);
        assert_eq!(rt.entries().count(), 2);
    }

    #[test]
    fn routing_table_prefers_closer_on_conflict() {
        let owner = Key::from_raw(0x0000000000);
        let mut rt = RoutingTable::new(owner);
        let far = Key::from_raw(0x1F00000000);
        let near = Key::from_raw(0x1000000001);
        rt.add(far);
        rt.add(near);
        assert_eq!(rt.next_hop(Key::from_raw(0x1234567890)), Some(near));
        // Re-adding the farther node does not displace the nearer one.
        rt.add(far);
        assert_eq!(rt.next_hop(Key::from_raw(0x1234567890)), Some(near));
    }

    #[test]
    fn routing_table_remove() {
        let owner = Key::from_raw(0);
        let mut rt = RoutingTable::new(owner);
        let p = Key::from_raw(0x5000000000);
        rt.add(p);
        rt.remove(p);
        assert_eq!(rt.next_hop(Key::from_raw(0x5000000001)), None);
    }

    #[test]
    fn leaf_set_wraps_around_the_ring() {
        let owner = Key::from_raw(0x8000000000);
        let peers = tree(&[0x1000000000, 0x7000000000, 0x9000000000, 0xF000000000]);
        let mut leaf = LeafSet::new();
        leaf.rebuild(owner, &peers, 2);
        assert_eq!(
            leaf.right(),
            &[Key::from_raw(0x9000000000), Key::from_raw(0xF000000000)]
        );
        assert_eq!(
            leaf.left(),
            &[Key::from_raw(0x7000000000), Key::from_raw(0x1000000000)]
        );
    }

    #[test]
    fn leaf_set_on_tiny_ring_deduplicates() {
        let owner = Key::from_raw(0x10);
        let peers = tree(&[0x20]);
        let mut leaf = LeafSet::new();
        leaf.rebuild(owner, &peers, 2);
        assert_eq!(leaf.immediate_neighbors(), vec![Key::from_raw(0x20)]);
        assert_eq!(leaf.members(), vec![Key::from_raw(0x20)]);
    }

    #[test]
    fn replica_targets_alternate_sides() {
        let owner = Key::from_raw(0x8000000000);
        let peers = tree(&[0x6000000000, 0x7000000000, 0x9000000000, 0xA000000000]);
        let mut leaf = LeafSet::new();
        leaf.rebuild(owner, &peers, 2);
        let reps = leaf.replica_targets(3);
        assert_eq!(
            reps,
            vec![
                Key::from_raw(0x9000000000),
                Key::from_raw(0x7000000000),
                Key::from_raw(0xA000000000),
            ]
        );
        assert_eq!(leaf.replica_targets(0), Vec::<Key>::new());
    }

    #[test]
    fn route_delivers_at_root() {
        let owner = Key::from_raw(0x8000000000);
        let peers = tree(&[0x1000000000, 0xF000000000]);
        let mut leaf = LeafSet::new();
        leaf.rebuild(owner, &peers, 2);
        let rt = RoutingTable::new(owner);
        // Key right next to the owner: we are the root.
        let hop = route(owner, Key::from_raw(0x8000000001), &leaf, &rt, &peers);
        assert_eq!(hop, NextHop::Deliver);
    }

    #[test]
    fn route_forwards_to_numerically_closest_leaf() {
        let owner = Key::from_raw(0x1000000000);
        let peers = tree(&[0x8000000000, 0xF000000000]);
        let mut leaf = LeafSet::new();
        leaf.rebuild(owner, &peers, 2);
        let mut rt = RoutingTable::new(owner);
        for k in peers.keys() {
            rt.add(*k);
        }
        let hop = route(owner, Key::from_raw(0x8000000001), &leaf, &rt, &peers);
        assert_eq!(hop, NextHop::Forward(Key::from_raw(0x8000000000)));
    }

    #[test]
    fn route_uses_prefix_table_when_root_unknown_locally() {
        // Owner knows a far node only through the routing table (not leaf):
        // simulate by rebuilding the leaf with size 1 over nearer peers.
        let owner = Key::from_raw(0x0000000000);
        let peers = tree(&[0x0000000001, 0x0000000002, 0x8800000000, 0x8000000000]);
        let mut leaf = LeafSet::new();
        leaf.rebuild(owner, &peers, 1);
        let mut rt = RoutingTable::new(owner);
        for k in peers.keys() {
            rt.add(*k);
        }
        let hop = route(owner, Key::from_raw(0x8800000007), &leaf, &rt, &peers);
        assert_eq!(hop, NextHop::Forward(Key::from_raw(0x8800000000)));
    }
}
