//! A from-scratch red-black tree.
//!
//! The paper notes that "on each node, Chimera provides a logical tree view
//! of other nodes in the overlay, implemented as a red-black tree". This
//! module reproduces that data structure rather than borrowing
//! `std::collections::BTreeMap`: a left-leaning red-black tree (Sedgewick's
//! 2-3 variant), which satisfies the classic red-black invariants —
//! the root is black, no red node has a red child, and every root-to-leaf
//! path crosses the same number of black nodes — guaranteeing `O(log n)`
//! lookups, inserts, and deletes.
//!
//! The overlay uses it as the ordered view of all known peers, from which
//! leaf sets (ring neighbours) and `chimeraGetDecision` candidate lists are
//! derived.

use std::cmp::Ordering;
use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    value: V,
    color: Color,
    left: Link<K, V>,
    right: Link<K, V>,
}

type Link<K, V> = Option<Box<Node<K, V>>>;

/// An ordered map implemented as a left-leaning red-black tree.
///
/// # Examples
///
/// ```
/// use c4h_chimera::RbTree;
///
/// let mut t = RbTree::new();
/// t.insert(3, "c");
/// t.insert(1, "a");
/// t.insert(2, "b");
/// assert_eq!(t.get(&2), Some(&"b"));
/// let keys: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
/// assert_eq!(keys, vec![1, 2, 3]);
/// assert_eq!(t.remove(&2), Some("b"));
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Clone)]
pub struct RbTree<K, V> {
    root: Link<K, V>,
    len: usize,
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for RbTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K, V> Default for RbTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

fn is_red<K, V>(link: &Link<K, V>) -> bool {
    matches!(link, Some(n) if n.color == Color::Red)
}

fn rotate_left<K, V>(mut h: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut x = h.right.take().expect("rotate_left requires right child");
    h.right = x.left.take();
    x.color = h.color;
    h.color = Color::Red;
    x.left = Some(h);
    x
}

fn rotate_right<K, V>(mut h: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut x = h.left.take().expect("rotate_right requires left child");
    h.left = x.right.take();
    x.color = h.color;
    h.color = Color::Red;
    x.right = Some(h);
    x
}

fn flip_colors<K, V>(h: &mut Node<K, V>) {
    fn flip(c: Color) -> Color {
        match c {
            Color::Red => Color::Black,
            Color::Black => Color::Red,
        }
    }
    h.color = flip(h.color);
    if let Some(l) = h.left.as_mut() {
        l.color = flip(l.color);
    }
    if let Some(r) = h.right.as_mut() {
        r.color = flip(r.color);
    }
}

fn fix_up<K, V>(mut h: Box<Node<K, V>>) -> Box<Node<K, V>> {
    if is_red(&h.right) && !is_red(&h.left) {
        h = rotate_left(h);
    }
    if is_red(&h.left) && h.left.as_ref().is_some_and(|l| is_red(&l.left)) {
        h = rotate_right(h);
    }
    if is_red(&h.left) && is_red(&h.right) {
        flip_colors(&mut h);
    }
    h
}

fn move_red_left<K, V>(mut h: Box<Node<K, V>>) -> Box<Node<K, V>> {
    flip_colors(&mut h);
    if h.right.as_ref().is_some_and(|r| is_red(&r.left)) {
        h.right = Some(rotate_right(h.right.take().expect("checked above")));
        h = rotate_left(h);
        flip_colors(&mut h);
    }
    h
}

fn move_red_right<K, V>(mut h: Box<Node<K, V>>) -> Box<Node<K, V>> {
    flip_colors(&mut h);
    if h.left.as_ref().is_some_and(|l| is_red(&l.left)) {
        h = rotate_right(h);
        flip_colors(&mut h);
    }
    h
}

impl<K, V> RbTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RbTree { root: None, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-order iterator over entries.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            stack.push(n);
            cur = n.left.as_deref();
        }
        Iter { stack }
    }

    /// In-order iterator over keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }
}

impl<K: Ord, V> RbTree<K, V> {
    /// Looks up the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
                Ordering::Equal => return Some(&n.value),
            }
        }
        None
    }

    /// Looks up the value for `key`, mutably.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut cur = self.root.as_deref_mut();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less => cur = n.left.as_deref_mut(),
                Ordering::Greater => cur = n.right.as_deref_mut(),
                Ordering::Equal => return Some(&mut n.value),
            }
        }
        None
    }

    /// Returns `true` if the tree contains `key`.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts a key-value pair, returning the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (root, old) = Self::insert_rec(self.root.take(), key, value);
        let mut root = root;
        root.color = Color::Black;
        self.root = Some(root);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(link: Link<K, V>, key: K, value: V) -> (Box<Node<K, V>>, Option<V>) {
        let Some(mut h) = link else {
            return (
                Box::new(Node {
                    key,
                    value,
                    color: Color::Red,
                    left: None,
                    right: None,
                }),
                None,
            );
        };
        let old = match key.cmp(&h.key) {
            Ordering::Less => {
                let (l, old) = Self::insert_rec(h.left.take(), key, value);
                h.left = Some(l);
                old
            }
            Ordering::Greater => {
                let (r, old) = Self::insert_rec(h.right.take(), key, value);
                h.right = Some(r);
                old
            }
            Ordering::Equal => Some(std::mem::replace(&mut h.value, value)),
        };
        (fix_up(h), old)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        if !self.contains(key) {
            return None;
        }
        // LLRB delete requires the root to be treated as red when both
        // children are black.
        let mut root = self.root.take().expect("contains() implies non-empty");
        if !is_red(&root.left) && !is_red(&root.right) {
            root.color = Color::Red;
        }
        let (link, removed) = Self::remove_rec(root, key);
        self.root = link;
        if let Some(r) = self.root.as_mut() {
            r.color = Color::Black;
        }
        self.len -= 1;
        Some(removed)
    }

    fn remove_rec(mut h: Box<Node<K, V>>, key: &K) -> (Link<K, V>, V) {
        if key < &h.key {
            if !is_red(&h.left) && !h.left.as_ref().is_some_and(|l| is_red(&l.left)) {
                h = move_red_left(h);
            }
            let (l, removed) =
                Self::remove_rec(h.left.take().expect("key is in left subtree"), key);
            h.left = l;
            (Some(fix_up(h)), removed)
        } else {
            if is_red(&h.left) {
                h = rotate_right(h);
            }
            if key == &h.key && h.right.is_none() {
                return (None, h.value);
            }
            if !is_red(&h.right) && !h.right.as_ref().is_some_and(|r| is_red(&r.left)) {
                h = move_red_right(h);
            }
            if key == &h.key {
                // Replace with the successor (min of right subtree).
                let (r, min) = Self::remove_min_rec(h.right.take().expect("right checked above"));
                h.right = r;
                let removed = std::mem::replace(&mut h.value, min.value);
                h.key = min.key;
                (Some(fix_up(h)), removed)
            } else {
                let (r, removed) =
                    Self::remove_rec(h.right.take().expect("key is in right subtree"), key);
                h.right = r;
                (Some(fix_up(h)), removed)
            }
        }
    }

    fn remove_min_rec(mut h: Box<Node<K, V>>) -> (Link<K, V>, Box<Node<K, V>>) {
        if h.left.is_none() {
            return (None, h);
        }
        if !is_red(&h.left) && !h.left.as_ref().is_some_and(|l| is_red(&l.left)) {
            h = move_red_left(h);
        }
        let (l, min) = Self::remove_min_rec(h.left.take().expect("left checked above"));
        h.left = l;
        (Some(fix_up(h)), min)
    }

    /// The smallest entry.
    pub fn min(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_deref()?;
        while let Some(l) = cur.left.as_deref() {
            cur = l;
        }
        Some((&cur.key, &cur.value))
    }

    /// The largest entry.
    pub fn max(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_deref()?;
        while let Some(r) = cur.right.as_deref() {
            cur = r;
        }
        Some((&cur.key, &cur.value))
    }

    /// The smallest entry with key strictly greater than `key`.
    pub fn next_after(&self, key: &K) -> Option<(&K, &V)> {
        let mut best: Option<&Node<K, V>> = None;
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            if &n.key > key {
                best = Some(n);
                cur = n.left.as_deref();
            } else {
                cur = n.right.as_deref();
            }
        }
        best.map(|n| (&n.key, &n.value))
    }

    /// The largest entry with key strictly less than `key`.
    pub fn prev_before(&self, key: &K) -> Option<(&K, &V)> {
        let mut best: Option<&Node<K, V>> = None;
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            if &n.key < key {
                best = Some(n);
                cur = n.right.as_deref();
            } else {
                cur = n.left.as_deref();
            }
        }
        best.map(|n| (&n.key, &n.value))
    }

    /// Verifies the red-black invariants; used by tests and debug assertions.
    ///
    /// Checks: root is black; no red node has a red child; every path from
    /// the root to a leaf crosses the same number of black nodes; keys are
    /// in strict order.
    pub fn check_invariants(&self) -> Result<(), String> {
        if is_red(&self.root) {
            return Err("root is red".into());
        }
        fn walk<K: Ord, V>(
            link: &Link<K, V>,
            lo: Option<&K>,
            hi: Option<&K>,
        ) -> Result<usize, String> {
            let Some(n) = link else {
                return Ok(1);
            };
            if let Some(lo) = lo {
                if &n.key <= lo {
                    return Err("key order violated (lower bound)".into());
                }
            }
            if let Some(hi) = hi {
                if &n.key >= hi {
                    return Err("key order violated (upper bound)".into());
                }
            }
            if n.color == Color::Red && (is_red(&n.left) || is_red(&n.right)) {
                return Err("red node with red child".into());
            }
            let lb = walk(&n.left, lo, Some(&n.key))?;
            let rb = walk(&n.right, Some(&n.key), hi)?;
            if lb != rb {
                return Err(format!("black-height mismatch: {lb} vs {rb}"));
            }
            Ok(lb + usize::from(n.color == Color::Black))
        }
        walk(&self.root, None, None).map(|_| ())
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for RbTree<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut t = RbTree::new();
        for (k, v) in iter {
            t.insert(k, v);
        }
        t
    }
}

impl<K: Ord, V> Extend<(K, V)> for RbTree<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// In-order iterator over a [`RbTree`].
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        let mut cur = n.right.as_deref();
        while let Some(c) = cur {
            self.stack.push(c);
            cur = c.left.as_deref();
        }
        Some((&n.key, &n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = RbTree::new();
        assert!(t.is_empty());
        for i in 0..100 {
            assert_eq!(t.insert(i, i * 10), None);
        }
        assert_eq!(t.len(), 100);
        for i in 0..100 {
            assert_eq!(t.get(&i), Some(&(i * 10)));
        }
        for i in (0..100).step_by(2) {
            assert_eq!(t.remove(&i), Some(i * 10));
        }
        assert_eq!(t.len(), 50);
        assert_eq!(t.get(&2), None);
        assert_eq!(t.get(&3), Some(&30));
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t = RbTree::new();
        t.insert("k", 1);
        assert_eq!(t.insert("k", 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&"k"), Some(&2));
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t: RbTree<i32, i32> = RbTree::new();
        assert_eq!(t.remove(&5), None);
        t.insert(1, 1);
        assert_eq!(t.remove(&5), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iteration_is_in_order() {
        let mut t = RbTree::new();
        for i in [5, 3, 8, 1, 4, 7, 9, 2, 6, 0] {
            t.insert(i, ());
        }
        let keys: Vec<i32> = t.keys().copied().collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn min_max_next_prev() {
        let t: RbTree<i32, ()> = [10, 20, 30].into_iter().map(|k| (k, ())).collect();
        assert_eq!(t.min().unwrap().0, &10);
        assert_eq!(t.max().unwrap().0, &30);
        assert_eq!(t.next_after(&10).unwrap().0, &20);
        assert_eq!(t.next_after(&15).unwrap().0, &20);
        assert_eq!(t.next_after(&30), None);
        assert_eq!(t.prev_before(&30).unwrap().0, &20);
        assert_eq!(t.prev_before(&10), None);
    }

    #[test]
    fn get_mut_mutates() {
        let mut t = RbTree::new();
        t.insert(1, vec![1]);
        t.get_mut(&1).unwrap().push(2);
        assert_eq!(t.get(&1), Some(&vec![1, 2]));
        assert_eq!(t.get_mut(&2), None);
    }

    #[test]
    fn invariants_hold_under_mixed_workload() {
        let mut t = RbTree::new();
        // Deterministic pseudo-random insert/remove mix.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut present = std::collections::BTreeSet::new();
        for step in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (x >> 33) % 500;
            if step % 3 == 0 && !present.is_empty() {
                let pick = *present.iter().next().unwrap();
                assert!(t.remove(&pick).is_some());
                present.remove(&pick);
            } else {
                t.insert(k, step);
                present.insert(k);
            }
            if step % 97 == 0 {
                t.check_invariants().unwrap();
                assert_eq!(t.len(), present.len());
            }
        }
        t.check_invariants().unwrap();
        let keys: Vec<u64> = t.keys().copied().collect();
        let expect: Vec<u64> = present.into_iter().collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn debug_format_is_nonempty() {
        let t: RbTree<i32, i32> = RbTree::new();
        assert_eq!(format!("{t:?}"), "{}");
        let t: RbTree<i32, i32> = [(1, 2)].into_iter().collect();
        assert_eq!(format!("{t:?}"), "{1: 2}");
    }
}
