//! Property-based tests over the full Cloud4Home stack: invariants that
//! must hold for arbitrary workloads, sizes, and policies.

use proptest::prelude::*;

use cloud4home::{Cloud4Home, Config, NodeId, Object, PlacementClass, StorePolicy};

fn policy_strategy() -> impl Strategy<Value = StorePolicy> {
    prop_oneof![
        Just(StorePolicy::MandatoryFirst),
        Just(StorePolicy::ForceHome),
        Just(StorePolicy::ForceCloud),
        Just(StorePolicy::Privacy),
        (1u64..64).prop_map(|mb| StorePolicy::SizeThreshold {
            cloud_at_bytes: mb << 20,
        }),
    ]
}

#[derive(Debug, Clone)]
struct WorkItem {
    client: usize,
    size: u64,
    policy: StorePolicy,
    kind: &'static str,
    private: bool,
}

fn work_strategy() -> impl Strategy<Value = WorkItem> {
    (
        0usize..6,
        1u64..(3 << 20),
        policy_strategy(),
        prop_oneof![Just("doc"), Just("mp3"), Just("avi"), Just("jpeg")],
        any::<bool>(),
    )
        .prop_map(|(client, size, policy, kind, private)| WorkItem {
            client,
            size,
            policy,
            kind,
            private,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any successfully stored object fetches back with its exact size,
    /// and no operation's accounted breakdown exceeds its total latency.
    #[test]
    fn stored_objects_roundtrip_and_breakdowns_are_consistent(
        items in proptest::collection::vec(work_strategy(), 1..6),
        seed in 0u64..1000,
    ) {
        let mut home = Cloud4Home::new(Config::paper_testbed(seed));
        let mut stored: Vec<(String, u64)> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let name = format!("prop/{i}");
            let mut obj = Object::synthetic(&name, seed + i as u64, item.size, item.kind);
            obj.private = item.private;
            let op = home.store_object(NodeId(item.client), obj, item.policy.clone(), true);
            let r = home.run_until_complete(op);
            prop_assert!(
                r.breakdown.accounted() <= r.total() + std::time::Duration::from_millis(1),
                "breakdown exceeds total: {:?} vs {:?}",
                r.breakdown.accounted(),
                r.total()
            );
            if let Ok(out) = &r.outcome {
                prop_assert_eq!(out.bytes, item.size);
                stored.push((name, item.size));
            }
        }
        for (i, (name, size)) in stored.iter().enumerate() {
            let reader = NodeId((i + 1) % 6);
            let op = home.fetch_object(reader, name);
            let r = home.run_until_complete(op);
            prop_assert!(
                r.breakdown.accounted() <= r.total() + std::time::Duration::from_millis(1)
            );
            let out = r.outcome.as_ref().expect("stored object must fetch");
            prop_assert_eq!(out.bytes, *size);
        }
    }

    /// The privacy rule is absolute: private payloads and mp3s never
    /// classify to the remote cloud under the Privacy policy.
    #[test]
    fn privacy_policy_never_sends_private_data_remote(
        size in 1u64..(1 << 30),
        kind in prop_oneof![Just("mp3"), Just("avi"), Just("doc")],
        private in any::<bool>(),
    ) {
        let mut obj = Object::synthetic("p", 1, size, kind);
        obj.private = private;
        let class = StorePolicy::Privacy.classify(&obj);
        if private || kind == "mp3" {
            prop_assert_eq!(class, PlacementClass::LocalFirst);
        } else {
            prop_assert_eq!(class, PlacementClass::RemoteCloud);
        }
    }

    /// Size-threshold classification is monotone: if an object goes to the
    /// cloud, every larger object does too.
    #[test]
    fn size_threshold_is_monotone(
        threshold in 1u64..(100 << 20),
        a in 0u64..(200 << 20),
        b in 0u64..(200 << 20),
    ) {
        let policy = StorePolicy::SizeThreshold { cloud_at_bytes: threshold };
        let (lo, hi) = (a.min(b), a.max(b));
        let small = policy.classify(&Object::synthetic("s", 1, lo, "doc"));
        let large = policy.classify(&Object::synthetic("l", 1, hi, "doc"));
        if small == PlacementClass::RemoteCloud {
            prop_assert_eq!(large, PlacementClass::RemoteCloud);
        }
    }
}

/// Full-run determinism: identical seeds and workloads produce identical
/// report streams, bit for bit.
#[test]
fn identical_runs_produce_identical_reports() {
    let run = |seed: u64| {
        let mut home = Cloud4Home::new(Config::paper_testbed(seed));
        let mut log = Vec::new();
        for i in 0..6u64 {
            let obj = Object::synthetic(&format!("det/{i}"), i, (i + 1) * 300_000, "doc");
            let policy = if i % 2 == 0 {
                StorePolicy::ForceHome
            } else {
                StorePolicy::ForceCloud
            };
            let op = home.store_object(NodeId((i % 6) as usize), obj, policy, true);
            let r = home.run_until_complete(op);
            log.push((r.completed, r.breakdown, r.outcome.is_ok()));
        }
        log
    };
    assert_eq!(run(314), run(314));
}
