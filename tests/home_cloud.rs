//! Deployment-level integration tests: overlay formation, storage
//! placement, policy enforcement, and determinism.

use cloud4home::{Cloud4Home, Config, NodeId, Object, OpError, StorePolicy};

fn testbed(seed: u64) -> Cloud4Home {
    Cloud4Home::new(Config::paper_testbed(seed))
}

#[test]
fn store_then_fetch_roundtrips_content() {
    let mut home = testbed(1);
    let obj = Object::new("notes/today.txt", &b"meet at noon"[..], "txt");
    let op = home.store_object(NodeId(0), obj, StorePolicy::MandatoryFirst, true);
    home.run_until_complete(op).expect_ok();

    let op = home.fetch_object(NodeId(4), "notes/today.txt");
    let report = home.run_until_complete(op);
    let out = report.expect_ok();
    assert_eq!(out.bytes, 12);
    assert!(!out.via_cloud, "small local store must not touch the cloud");
}

#[test]
fn force_cloud_policy_stores_and_fetches_via_cloud() {
    let mut home = testbed(2);
    let obj = Object::synthetic("backup/archive.bin", 9, 2 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceCloud, true);
    let r = home.run_until_complete(op);
    assert!(r.expect_ok().via_cloud);

    let op = home.fetch_object(NodeId(2), "backup/archive.bin");
    let r = home.run_until_complete(op);
    assert!(r.expect_ok().via_cloud);
    // Cloud transfers dominate: the fetch took seconds, not milliseconds.
    assert!(
        r.total().as_secs_f64() > 5.0,
        "WAN fetch was {:?}",
        r.total()
    );
}

#[test]
fn privacy_policy_keeps_mp3_home_and_shares_the_rest() {
    let mut home = testbed(3);
    let song = Object::synthetic("music/song.mp3", 1, 1 << 20, "mp3");
    let video = Object::synthetic("videos/clip.avi", 2, 1 << 20, "avi");
    let op1 = home.store_object(NodeId(0), song, StorePolicy::Privacy, true);
    let op2 = home.store_object(NodeId(0), video, StorePolicy::Privacy, true);
    let r1 = home.run_until_complete(op1);
    let r2 = home.run_until_complete(op2);
    assert!(!r1.expect_ok().via_cloud, "private mp3 must stay home");
    assert!(r2.expect_ok().via_cloud, "shareable video goes remote");
}

#[test]
fn size_threshold_policy_splits_by_size() {
    let mut home = testbed(4);
    let policy = StorePolicy::SizeThreshold {
        cloud_at_bytes: 10 << 20,
    };
    let small = Object::synthetic("img/small.jpg", 1, 1 << 20, "jpeg");
    let big = Object::synthetic("img/big.jpg", 2, 20 << 20, "jpeg");
    let op = home.store_object(NodeId(0), small, policy.clone(), true);
    assert!(!home.run_until_complete(op).expect_ok().via_cloud);
    let op = home.store_object(NodeId(0), big, policy, true);
    assert!(home.run_until_complete(op).expect_ok().via_cloud);
}

#[test]
fn full_mandatory_bin_spills_to_voluntary_peer() {
    let mut config = Config::paper_testbed(5);
    // Tiny mandatory bin on node 0: everything spills.
    config.nodes[0].mandatory_bytes = 64 * 1024;
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("spill/data.bin", 3, 4 << 20, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::MandatoryFirst, true);
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert!(
        !out.via_cloud,
        "voluntary peer space should absorb the spill"
    );
    // The object landed on some *other* node.
    assert_eq!(home.objects_on(NodeId(0)), 0);
    let elsewhere: usize = (1..home.node_count())
        .map(|i| home.objects_on(NodeId(i)))
        .sum();
    assert_eq!(elsewhere, 1);
    // Spilling requires peer resource queries: decision time was charged.
    assert!(r.breakdown.decision.as_millis() > 0);
}

#[test]
fn exhausted_home_spills_to_cloud_when_allowed() {
    let mut config = Config::paper_testbed(6);
    for n in &mut config.nodes {
        n.mandatory_bytes = 64 * 1024;
        n.voluntary_bytes = 64 * 1024;
    }
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("huge/data.bin", 4, 8 << 20, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::MandatoryFirst, true);
    let r = home.run_until_complete(op);
    assert!(r.expect_ok().via_cloud);
}

#[test]
fn privacy_policy_refuses_cloud_spill() {
    let mut config = Config::paper_testbed(7);
    for n in &mut config.nodes {
        n.mandatory_bytes = 64 * 1024;
        n.voluntary_bytes = 64 * 1024;
    }
    let mut home = Cloud4Home::new(config);
    let song = Object::synthetic("music/secret.mp3", 5, 8 << 20, "mp3");
    let op = home.store_object(NodeId(0), song, StorePolicy::Privacy, true);
    let r = home.run_until_complete(op);
    assert!(matches!(r.outcome, Err(OpError::NoSpace(_))));
}

#[test]
fn fetch_of_unknown_object_fails_cleanly() {
    let mut home = testbed(8);
    let op = home.fetch_object(NodeId(0), "never/stored.bin");
    let r = home.run_until_complete(op);
    assert!(matches!(r.outcome, Err(OpError::NotFound(_))));
}

#[test]
fn duplicate_store_overwrites_metadata() {
    let mut home = testbed(9);
    let a = Object::new("doc/x", &b"v1"[..], "txt");
    let op = home.store_object(NodeId(0), a, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    // Store again from a different node under the same name.
    let b = Object::new("doc/x", &b"v2-longer"[..], "txt");
    let op = home.store_object(NodeId(1), b, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    let op = home.fetch_object(NodeId(2), "doc/x");
    let r = home.run_until_complete(op);
    assert_eq!(r.expect_ok().bytes, 9, "metadata points at the new version");
}

#[test]
fn non_blocking_store_completes_faster_than_blocking() {
    let mut home = testbed(10);
    let a = Object::synthetic("nb/a.bin", 1, 1 << 20, "doc");
    let b = Object::synthetic("nb/b.bin", 2, 1 << 20, "doc");
    let op = home.store_object(NodeId(0), a, StorePolicy::ForceHome, true);
    let blocking = home.run_until_complete(op).total();
    let op = home.store_object(NodeId(0), b, StorePolicy::ForceHome, false);
    let non_blocking = home.run_until_complete(op).total();
    assert!(
        non_blocking < blocking,
        "blocking {blocking:?} must include the extra ack vs {non_blocking:?}"
    );
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let run = |seed: u64| {
        let mut home = testbed(seed);
        let mut totals = Vec::new();
        for i in 0..5u64 {
            let obj = Object::synthetic(&format!("det/{i}"), i, 2 << 20, "doc");
            let op = home.store_object(
                NodeId(i as usize % 6),
                obj,
                StorePolicy::MandatoryFirst,
                true,
            );
            totals.push(home.run_until_complete(op).total());
        }
        for i in 0..5usize {
            let op = home.fetch_object(NodeId((i + 3) % 6), &format!("det/{i}"));
            totals.push(home.run_until_complete(op).total());
        }
        totals
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78), "different seeds should differ somewhere");
}

#[test]
fn runtime_statistics_accumulate() {
    let mut home = testbed(11);
    let obj = Object::synthetic("stats/x.bin", 1, 1 << 20, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    let op = home.fetch_object(NodeId(1), "stats/x.bin");
    home.run_until_complete(op).expect_ok();
    let stats = home.stats();
    assert_eq!(stats.ops_completed, 2);
    assert!(stats.envelopes_delivered > 0);
    assert_eq!(home.node_count(), 6);
    assert_eq!(home.node_name(NodeId(5)), "desktop");
    assert_eq!(home.gateway(), Some(NodeId(5)));
}

#[test]
fn restoring_same_object_on_same_node_overwrites_the_file() {
    let mut home = testbed(12);
    for (pass, size) in [(0u64, 3 << 20), (1, 1 << 20)] {
        let obj = Object::synthetic("re/store.bin", pass, size, "doc");
        let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();
    }
    // One file, latest size.
    assert_eq!(home.objects_on(NodeId(2)), 1);
    let op = home.fetch_object(NodeId(0), "re/store.bin");
    let r = home.run_until_complete(op);
    assert_eq!(r.expect_ok().bytes, 1 << 20);
}
