//! Integration tests for the future-work extensions: pipeline processing,
//! adaptive placement, and changing network conditions.

use std::time::Duration;

use cloud4home::{
    AdaptivePlacement, Cloud4Home, Config, NodeId, Object, Placement, RoutePolicy, ServiceKind,
    StorePolicy,
};

fn testbed(seed: u64) -> Cloud4Home {
    Cloud4Home::new(Config::paper_testbed(seed))
}

#[test]
fn pipeline_runs_both_stages_at_one_target() {
    let mut home = testbed(80);
    let obj = Object::synthetic("pipe/img.jpg", 1, 512 << 10, "jpeg");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    let op = home.process_pipeline(
        NodeId(2),
        "pipe/img.jpg",
        &[ServiceKind::FaceDetect, ServiceKind::FaceRecognize],
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert_eq!(out.exec_target.as_deref(), Some("desktop"));
    // The final stage's output (recognition id) is what comes back.
    assert!(out.summary.as_deref().unwrap_or("").contains("best match"));
    assert!(r.breakdown.exec > Duration::ZERO);
}

#[test]
fn pipeline_moves_the_argument_once() {
    let mut home = testbed(81);
    let obj = Object::synthetic("pipe/big.jpg", 2, 1 << 20, "jpeg");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    // Two separate process ops move the image twice.
    let mut separate = Duration::ZERO;
    for kind in [ServiceKind::FaceDetect, ServiceKind::FaceRecognize] {
        let op = home.process_object_at(NodeId(2), "pipe/big.jpg", kind, Placement::Pin(NodeId(5)));
        let r = home.run_until_complete(op);
        r.expect_ok();
        separate += r.breakdown.inter_node;
    }
    // One pipeline op moves it once.
    let op = home.process_pipeline(
        NodeId(2),
        "pipe/big.jpg",
        &[ServiceKind::FaceDetect, ServiceKind::FaceRecognize],
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    r.expect_ok();
    assert!(
        r.breakdown.inter_node < separate,
        "pipeline movement {:?} must undercut two separate moves {:?}",
        r.breakdown.inter_node,
        separate
    );
}

#[test]
fn pipeline_requires_a_target_providing_every_stage() {
    let mut config = Config::paper_testbed(82);
    // Spread the stages so no single provider has both.
    for n in &mut config.nodes {
        n.services.clear();
    }
    config.nodes[0].services = vec![ServiceKind::FaceDetect];
    config.nodes[1].services = vec![ServiceKind::FaceRecognize];
    config.cloud.as_mut().unwrap().services = vec![ServiceKind::FaceDetect];
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("pipe/img.jpg", 1, 256 << 10, "jpeg");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    let op = home.process_pipeline(
        NodeId(2),
        "pipe/img.jpg",
        &[ServiceKind::FaceDetect, ServiceKind::FaceRecognize],
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    assert!(
        r.outcome.is_err(),
        "no node provides both stages: {:?}",
        r.outcome
    );
}

#[test]
fn adaptive_learner_tracks_real_deployment_rates() {
    let mut home = testbed(83);
    // Start with priors that wrongly favour the cloud.
    let mut learner = AdaptivePlacement::with_priors(0.05e6, 1.0e6);
    let probe = Object::synthetic("adapt/probe", 9, 4 << 20, "doc");
    assert_eq!(learner.policy_for(&probe), StorePolicy::ForceCloud);

    // Feed it a handful of real operations from both placements.
    for i in 0..4u64 {
        let name = format!("adapt/h{i}");
        let obj = Object::synthetic(&name, i, 4 << 20, "doc");
        let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
        learner.observe(&home.run_until_complete(op));
        let name = format!("adapt/c{i}");
        let obj = Object::synthetic(&name, i + 50, 4 << 20, "doc");
        let op = home.store_object(NodeId(0), obj, StorePolicy::ForceCloud, true);
        learner.observe(&home.run_until_complete(op));
    }
    let (h, c) = learner.estimates_bps();
    assert!(h > 20.0 * c, "learned home {h:.0} B/s vs cloud {c:.0} B/s");
    assert_eq!(learner.policy_for(&probe), StorePolicy::ForceHome);
}

#[test]
fn degraded_wan_slows_new_cloud_transfers() {
    let mut home = testbed(84);
    let obj = Object::synthetic("wan/a.bin", 1, 2 << 20, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceCloud, true);
    let baseline = home.run_until_complete(op).total();

    home.set_wan_quality(0.15);
    let obj = Object::synthetic("wan/b.bin", 1, 2 << 20, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceCloud, true);
    let degraded = home.run_until_complete(op).total();
    assert!(
        degraded.as_secs_f64() > 2.0 * baseline.as_secs_f64(),
        "degraded WAN {degraded:?} should dwarf baseline {baseline:?}"
    );
}

#[test]
fn decision_engine_adapts_to_degraded_wan() {
    // A 24 MiB object sits in the cloud; transcoding is available both in
    // the cloud and on the desktop. With the nominal WAN, fetching the
    // object home is expensive, so the cloud executes in place. That choice
    // must persist (and home execution get *less* attractive) as the WAN
    // degrades — estimates respond to live conditions.
    let mut home = testbed(85);
    let obj = Object::synthetic("wan/video.avi", 3, 24 << 20, "avi");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceCloud, true);
    home.run_until_complete(op).expect_ok();

    let op = home.process_object(
        NodeId(0),
        "wan/video.avi",
        ServiceKind::Transcode,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    assert_eq!(r.expect_ok().exec_target.as_deref(), Some("cloud"));

    home.set_wan_quality(0.2);
    let op = home.process_object(
        NodeId(0),
        "wan/video.avi",
        ServiceKind::Transcode,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    assert_eq!(
        r.expect_ok().exec_target.as_deref(),
        Some("cloud"),
        "moving 24 MiB over a degraded WAN is even less attractive"
    );
}

#[test]
#[should_panic(expected = "WAN quality factor")]
fn wan_quality_rejects_out_of_range() {
    let mut home = testbed(86);
    home.set_wan_quality(1.5);
}

#[test]
#[should_panic(expected = "pipeline needs at least one service")]
fn empty_pipeline_is_rejected() {
    let mut home = testbed(87);
    home.process_pipeline(NodeId(0), "x", &[], RoutePolicy::Performance);
}

#[test]
fn operations_survive_a_lossy_overlay() {
    let mut home = testbed(88);
    home.set_message_loss(0.2);
    let mut ok = 0;
    let total = 12;
    for i in 0..total as u64 {
        let name = format!("lossy/{i}");
        let obj = Object::synthetic(&name, i, 256 << 10, "doc");
        let op = home.store_object(NodeId((i % 6) as usize), obj, StorePolicy::ForceHome, true);
        let stored = home.run_until_complete(op).outcome.is_ok();
        if !stored {
            continue;
        }
        let op = home.fetch_object(NodeId(((i + 2) % 6) as usize), &name);
        if home.run_until_complete(op).outcome.is_ok() {
            ok += 1;
        }
    }
    assert!(
        ok >= total * 3 / 4,
        "with 20% message loss and retries, most round trips succeed: {ok}/{total}"
    );
}

#[test]
fn retries_are_bounded_under_total_loss() {
    // With every overlay message lost, operations must fail cleanly after
    // the bounded retries rather than hang.
    let mut home = testbed(89);
    home.set_message_loss(0.999_999);
    let op = home.fetch_object(NodeId(0), "lossy/never");
    let r = home.run_until_complete(op);
    assert!(
        r.outcome.is_err(),
        "expected a clean failure, got {:?}",
        r.outcome
    );
    // Three attempts, each bounded by the 3 s request timeout.
    assert!(
        r.total().as_secs_f64() < 30.0,
        "failed fast enough: {:?}",
        r.total()
    );
}

#[test]
#[should_panic(expected = "loss probability")]
fn message_loss_rejects_out_of_range() {
    let mut home = testbed(90);
    home.set_message_loss(1.0);
}

#[test]
fn compression_runs_near_the_data_before_archival() {
    let mut config = Config::paper_testbed(91);
    // The desktop offers compression; the cloud does too.
    config.nodes[5].services.push(ServiceKind::Compress);
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("arch/logs.bin", 4, 6 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    let op = home.process_object(
        NodeId(1),
        "arch/logs.bin",
        ServiceKind::Compress,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    // The decision keeps the compression at home: shipping 6 MiB over the
    // WAN to compress it in the cloud would defeat the purpose.
    assert_eq!(out.exec_target.as_deref(), Some("desktop"));
    assert!(out.bytes < 6 << 20, "output is the compressed archive");
    assert!(out.summary.as_deref().unwrap_or("").contains("compressed"));
}
