//! Churn handling and workload-replay integration tests.

use std::time::Duration;

use c4h_workloads::{generate, OpKind, TraceConfig};
use cloud4home::{
    Cloud4Home, Config, FaultEvent, FaultPlan, NodeId, Object, OpError, OpId, Placement,
    RoutePolicy, ServiceKind, StorePolicy,
};

fn testbed(seed: u64) -> Cloud4Home {
    Cloud4Home::new(Config::paper_testbed(seed))
}

#[test]
fn metadata_survives_graceful_leave() {
    let mut home = testbed(40);
    // Objects stored on node 1; node 3 (not the owner) leaves.
    for i in 0..4u64 {
        let obj = Object::synthetic(&format!("leave/{i}"), i, 512 << 10, "doc");
        let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();
    }
    home.leave_node(NodeId(3));
    home.run_for(Duration::from_secs(3));
    for i in 0..4u64 {
        let op = home.fetch_object(NodeId(2), &format!("leave/{i}"));
        let r = home.run_until_complete(op);
        assert!(
            r.outcome.is_ok(),
            "object {i} lost after leave: {:?}",
            r.outcome
        );
    }
}

#[test]
fn replicated_objects_survive_owner_departure() {
    let mut config = Config::paper_testbed(41);
    config.replication = 2;
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("depart/data.bin", 1, 512 << 10, "doc");
    let op = home.store_object(NodeId(3), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    assert_eq!(home.objects_on(NodeId(3)), 1);

    home.crash_node(NodeId(3));
    home.run_for(Duration::from_secs(8));
    // The owner is gone, but a data replica still serves the fetch.
    let op = home.fetch_object(NodeId(1), "depart/data.bin");
    let r = home.run_until_complete(op);
    assert!(r.outcome.is_ok(), "replica should serve: {:?}", r.outcome);
    assert!(r.failovers >= 1, "fetch must record the failover");
    assert_eq!(r.expect_ok().bytes, 512 << 10);
}

#[test]
fn crash_is_detected_and_metadata_recovered_from_replicas() {
    let mut home = testbed(42);
    for i in 0..6u64 {
        let obj = Object::synthetic(&format!("crash/{i}"), i, 256 << 10, "doc");
        let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();
    }
    // Crash a non-owner node and let the liveness detector run.
    home.crash_node(NodeId(4));
    home.run_for(Duration::from_secs(12));
    // Metadata for the objects is still resolvable (replicas promoted).
    let mut ok = 0;
    for i in 0..6u64 {
        let op = home.fetch_object(NodeId(2), &format!("crash/{i}"));
        let r = home.run_until_complete(op);
        if r.outcome.is_ok() {
            ok += 1;
        }
    }
    assert!(
        ok >= 5,
        "nearly all metadata should survive a single crash with replication, got {ok}/6"
    );
}

#[test]
fn rejoined_node_serves_again() {
    let mut home = testbed(43);
    home.leave_node(NodeId(2));
    home.run_for(Duration::from_secs(2));
    home.rejoin_node(NodeId(2)).expect("a live seed remains");
    // The rejoined node can store and fetch again.
    let obj = Object::synthetic("rejoin/x.bin", 1, 256 << 10, "doc");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    let op = home.fetch_object(NodeId(0), "rejoin/x.bin");
    home.run_until_complete(op).expect_ok();
}

#[test]
fn service_placement_survives_provider_departure() {
    let mut home = testbed(44);
    let obj = Object::synthetic("svc/img.jpg", 1, 512 << 10, "jpeg");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    // The desktop provides face detection; make it leave. netbook-0 still
    // provides it.
    home.leave_node(NodeId(5));
    home.run_for(Duration::from_secs(3));
    let op = home.process_object(
        NodeId(2),
        "svc/img.jpg",
        ServiceKind::FaceDetect,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert_ne!(out.exec_target.as_deref(), Some("desktop"));
}

#[test]
fn edonkey_trace_replays_cleanly() {
    // Keep the trace light: small objects, all four buckets scaled down.
    let mut home = testbed(45);
    let mut trace_cfg = TraceConfig::paper_default(60);
    trace_cfg.files = 40;
    trace_cfg.size_override = Some((256 << 10, 1 << 20));
    let trace = generate(&trace_cfg, 9);

    let mut pending: Vec<(OpId, usize)> = Vec::new();
    let mut stored = std::collections::HashSet::new();
    let flush = |home: &mut Cloud4Home, pending: &mut Vec<(OpId, usize)>| {
        for (op, _) in pending.drain(..) {
            let r = home.run_until_complete(op);
            assert!(r.outcome.is_ok(), "trace op failed: {:?}", r.outcome);
        }
    };
    for top in &trace.ops {
        let client = NodeId(top.client % home.node_count());
        let file = &trace.files[top.file];
        match top.op {
            OpKind::Store => {
                let obj = Object::synthetic(
                    &file.name,
                    file.content_seed,
                    file.size_bytes,
                    file.kind.content_type(),
                );
                pending.push((
                    home.store_object(client, obj, StorePolicy::MandatoryFirst, true),
                    top.file,
                ));
                stored.insert(top.file);
            }
            OpKind::Fetch => {
                assert!(stored.contains(&top.file), "trace invariant");
                // A fetch must not race its own file's in-flight store.
                if pending.iter().any(|(_, f)| *f == top.file) {
                    flush(&mut home, &mut pending);
                }
                pending.push((home.fetch_object(client, &file.name), usize::MAX));
            }
        }
        // Keep a small window of concurrent operations.
        if pending.len() >= 4 {
            let (op, _) = pending.remove(0);
            let r = home.run_until_complete(op);
            assert!(r.outcome.is_ok(), "trace op failed: {:?}", r.outcome);
        }
    }
    for (op, _) in pending {
        let r = home.run_until_complete(op);
        assert!(r.outcome.is_ok(), "trace op failed: {:?}", r.outcome);
    }
    assert_eq!(home.stats().ops_completed, 60);
}

#[test]
fn many_concurrent_operations_complete() {
    let mut home = testbed(46);
    let mut ops = Vec::new();
    for i in 0..12u64 {
        let obj = Object::synthetic(&format!("burst/{i}"), i, 1 << 20, "doc");
        ops.push(home.store_object(NodeId((i % 6) as usize), obj, StorePolicy::ForceHome, true));
    }
    for op in ops.drain(..) {
        home.run_until_complete(op).expect_ok();
    }
    for i in 0..12u64 {
        ops.push(home.fetch_object(NodeId(((i + 2) % 6) as usize), &format!("burst/{i}")));
    }
    home.run_until_idle();
    for op in ops {
        let r = home.take_report(op).expect("report present");
        assert!(r.outcome.is_ok());
    }
}

#[test]
fn dht_cache_serves_repeated_metadata_lookups() {
    let mut home = testbed(47);
    let obj = Object::synthetic("hot/popular.bin", 1, 256 << 10, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    for i in 0..10 {
        let op = home.fetch_object(NodeId((i % 5) + 1), "hot/popular.bin");
        home.run_until_complete(op).expect_ok();
    }
    let (hits, misses) = home.cache_stats();
    // In a six-node overlay most routes are one hop, so cache traffic is
    // modest — but the counters must be wired up.
    assert!(hits + misses < 10_000);
}

#[test]
fn crash_mid_transfer_aborts_the_fetch() {
    let mut home = testbed(48);
    let obj = Object::synthetic("mid/large.bin", 1, 20 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    // Start a 20 MiB fetch (≈2 s on the LAN), then crash the owner while
    // bytes are in flight.
    let op = home.fetch_object(NodeId(2), "mid/large.bin");
    home.run_for(Duration::from_millis(500));
    home.crash_node(NodeId(1));
    let r = home.run_until_complete(op);
    assert!(
        matches!(r.outcome, Err(OpError::OwnerUnreachable(_))),
        "expected an aborted transfer, got {:?}",
        r.outcome
    );
    // The failure is prompt, not a multi-second timeout.
    assert!(r.total().as_secs_f64() < 1.0, "failed at {:?}", r.total());
}

#[test]
fn executor_crash_mid_process_redispatches() {
    let mut home = testbed(49);
    // 8 MiB of argument movement keeps the operation in flight well past
    // the crash instant below.
    let obj = Object::synthetic("proc/frames.bin", 2, 8 << 20, "jpeg");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    let op = home.process_object(
        NodeId(2),
        "proc/frames.bin",
        ServiceKind::FaceDetect,
        RoutePolicy::Performance,
    );
    home.run_for(Duration::from_millis(400));
    home.crash_node(NodeId(5));
    let r = home.run_until_complete(op);
    // Whether or not the desktop had won the decision, the operation must
    // finish — on a surviving provider.
    let out = r.expect_ok();
    assert_ne!(out.exec_target.as_deref(), Some("desktop"));
}

#[test]
fn pinned_executor_crash_fails_with_executor_failed() {
    let mut home = testbed(50);
    let obj = Object::synthetic("proc/pinned.bin", 3, 8 << 20, "jpeg");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    // Pin execution to the desktop, then kill it mid-operation: with no
    // alternative candidates allowed, the op reports the executor failure.
    let op = home.process_object_at(
        NodeId(2),
        "proc/pinned.bin",
        ServiceKind::FaceDetect,
        Placement::Pin(NodeId(5)),
    );
    home.run_for(Duration::from_millis(400));
    home.crash_node(NodeId(5));
    let r = home.run_until_complete(op);
    assert!(
        matches!(r.outcome, Err(OpError::ExecutorFailed(_))),
        "expected ExecutorFailed, got {:?}",
        r.outcome
    );
}

#[test]
fn partition_heal_lets_a_waiting_fetch_converge() {
    let mut config = Config::paper_testbed(51);
    config.replication = 2;
    let mut home = Cloud4Home::new(config);
    // 20 MiB so the transfer is still in flight when the cut lands.
    let obj = Object::synthetic("part/big.bin", 4, 20 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    // The replica lands on the desktop (largest voluntary bin).
    assert_eq!(home.objects_on(NodeId(5)), 1);

    let op = home.fetch_object(NodeId(0), "part/big.bin");
    home.run_for(Duration::from_millis(500));
    // Cut both holders off from the client; heal eight seconds later. The
    // fetch must back off, outlast the cut, and converge after the heal.
    home.apply_fault(FaultEvent::Partition(vec![vec![NodeId(1), NodeId(5)]]));
    home.inject_faults(FaultPlan::new().at(Duration::from_secs(8), FaultEvent::Heal));
    let r = home.run_until_complete(op);
    assert!(
        r.outcome.is_ok(),
        "fetch should outlast the partition: {:?}",
        r.outcome
    );
    assert!(
        r.total() > Duration::from_secs(8),
        "completed only after the heal, took {:?}",
        r.total()
    );
    assert!(
        r.failovers >= 1,
        "the severed transfer counts as a failover"
    );
}

#[test]
fn repair_daemon_restores_replication_after_crash() {
    let mut config = Config::paper_testbed(52);
    config.replication = 2;
    let mut home = Cloud4Home::new(config);
    for i in 0..3u64 {
        let obj = Object::synthetic(&format!("repair/{i}"), i, 512 << 10, "doc");
        let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();
    }
    // All replicas land on the desktop (largest voluntary bin).
    assert_eq!(home.objects_on(NodeId(5)), 3);

    // Crash the replica holder: the failure detector fires and the repair
    // daemon re-replicates each object from its surviving primary.
    home.crash_node(NodeId(5));
    home.run_for(Duration::from_secs(20));
    let s = home.stats();
    assert!(s.repairs_started >= 3, "repair daemon never ran: {s:?}");
    assert_eq!(
        s.repairs_completed, s.repairs_started,
        "repairs aborted: {s:?}"
    );
    // Each object has two live copies again.
    let live_copies: usize = (0..home.node_count())
        .filter(|&j| j != 5)
        .map(|j| home.objects_on(NodeId(j)))
        .sum();
    assert_eq!(live_copies, 6, "3 primaries + 3 repaired replicas");
}

/// The acceptance chaos scenario: replay the eDonkey trace with replication
/// enabled while a seeded fault plan crashes a node, severs a 30 s
/// partition, and applies 10 % bursty message loss. Nearly all operations
/// must still complete, and the whole run must be deterministic.
#[test]
fn chaos_trace_replays_with_failover() {
    let (ok_a, failed_a, stats_a) = chaos_run();
    let (ok_b, failed_b, stats_b) = chaos_run();
    assert_eq!(
        (ok_a, failed_a),
        (ok_b, failed_b),
        "same-seed runs diverged"
    );
    assert_eq!(stats_a, stats_b, "same-seed stats must be byte-identical");

    let total = ok_a + failed_a;
    assert_eq!(total, 60, "every trace op must resolve, never hang");
    assert!(
        ok_a * 20 >= total * 19,
        "need >=95% of ops to complete under faults, got {ok_a}/{total}"
    );
}

fn chaos_run() -> (u32, u32, String) {
    let mut config = Config::paper_testbed(53);
    config.replication = 2;
    let mut home = Cloud4Home::new(config);
    home.inject_faults(
        FaultPlan::new()
            .at(
                Duration::ZERO,
                FaultEvent::BurstyLoss {
                    mean_loss: 0.10,
                    mean_burst_len: 8.0,
                },
            )
            .at(Duration::from_secs(5), FaultEvent::Crash(NodeId(4)))
            .at(
                Duration::from_secs(8),
                FaultEvent::Partition(vec![vec![NodeId(2)]]),
            )
            .at(Duration::from_secs(38), FaultEvent::Heal),
    );

    let mut trace_cfg = TraceConfig::paper_default(60);
    trace_cfg.files = 40;
    trace_cfg.size_override = Some((256 << 10, 1 << 20));
    let trace = generate(&trace_cfg, 9);

    // Trace clients remap onto nodes that stay up and on the majority side
    // of the cut; the faults instead hit a bystander (node 4) and whatever
    // metadata and replicas live on the isolated node 2.
    const CLIENTS: [usize; 4] = [0, 1, 3, 5];
    let mut ok = 0u32;
    let mut failed = 0u32;
    for top in &trace.ops {
        let client = NodeId(CLIENTS[top.client % CLIENTS.len()]);
        let file = &trace.files[top.file];
        let op = match top.op {
            OpKind::Store => {
                let obj = Object::synthetic(
                    &file.name,
                    file.content_seed,
                    file.size_bytes,
                    file.kind.content_type(),
                );
                home.store_object(client, obj, StorePolicy::MandatoryFirst, true)
            }
            OpKind::Fetch => home.fetch_object(client, &file.name),
        };
        let r = home.run_until_complete(op);
        if r.outcome.is_ok() {
            ok += 1;
        } else {
            failed += 1;
        }
    }
    (ok, failed, format!("{:?}", home.stats()))
}
