//! Churn handling and workload-replay integration tests.

use std::time::Duration;

use c4h_workloads::{generate, OpKind, TraceConfig};
use cloud4home::{
    Cloud4Home, Config, NodeId, Object, OpError, OpId, RoutePolicy, ServiceKind, StorePolicy,
};

fn testbed(seed: u64) -> Cloud4Home {
    Cloud4Home::new(Config::paper_testbed(seed))
}

#[test]
fn metadata_survives_graceful_leave() {
    let mut home = testbed(40);
    // Objects stored on node 1; node 3 (not the owner) leaves.
    for i in 0..4u64 {
        let obj = Object::synthetic(&format!("leave/{i}"), i, 512 << 10, "doc");
        let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();
    }
    home.leave_node(NodeId(3));
    home.run_for(Duration::from_secs(3));
    for i in 0..4u64 {
        let op = home.fetch_object(NodeId(2), &format!("leave/{i}"));
        let r = home.run_until_complete(op);
        assert!(r.outcome.is_ok(), "object {i} lost after leave: {:?}", r.outcome);
    }
}

#[test]
fn objects_owned_by_departed_node_become_unreachable() {
    let mut home = testbed(41);
    let obj = Object::synthetic("depart/data.bin", 1, 512 << 10, "doc");
    let op = home.store_object(NodeId(3), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    assert_eq!(home.objects_on(NodeId(3)), 1);

    home.leave_node(NodeId(3));
    home.run_for(Duration::from_secs(3));
    let op = home.fetch_object(NodeId(1), "depart/data.bin");
    let r = home.run_until_complete(op);
    assert!(
        matches!(r.outcome, Err(OpError::OwnerUnreachable(_))),
        "expected OwnerUnreachable, got {:?}",
        r.outcome
    );
}

#[test]
fn crash_is_detected_and_metadata_recovered_from_replicas() {
    let mut home = testbed(42);
    for i in 0..6u64 {
        let obj = Object::synthetic(&format!("crash/{i}"), i, 256 << 10, "doc");
        let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();
    }
    // Crash a non-owner node and let the liveness detector run.
    home.crash_node(NodeId(4));
    home.run_for(Duration::from_secs(12));
    // Metadata for the objects is still resolvable (replicas promoted).
    let mut ok = 0;
    for i in 0..6u64 {
        let op = home.fetch_object(NodeId(2), &format!("crash/{i}"));
        let r = home.run_until_complete(op);
        if r.outcome.is_ok() {
            ok += 1;
        }
    }
    assert!(
        ok >= 5,
        "nearly all metadata should survive a single crash with replication, got {ok}/6"
    );
}

#[test]
fn rejoined_node_serves_again() {
    let mut home = testbed(43);
    home.leave_node(NodeId(2));
    home.run_for(Duration::from_secs(2));
    home.rejoin_node(NodeId(2));
    // The rejoined node can store and fetch again.
    let obj = Object::synthetic("rejoin/x.bin", 1, 256 << 10, "doc");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    let op = home.fetch_object(NodeId(0), "rejoin/x.bin");
    home.run_until_complete(op).expect_ok();
}

#[test]
fn service_placement_survives_provider_departure() {
    let mut home = testbed(44);
    let obj = Object::synthetic("svc/img.jpg", 1, 512 << 10, "jpeg");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    // The desktop provides face detection; make it leave. netbook-0 still
    // provides it.
    home.leave_node(NodeId(5));
    home.run_for(Duration::from_secs(3));
    let op = home.process_object(
        NodeId(2),
        "svc/img.jpg",
        ServiceKind::FaceDetect,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert_ne!(out.exec_target.as_deref(), Some("desktop"));
}

#[test]
fn edonkey_trace_replays_cleanly() {
    // Keep the trace light: small objects, all four buckets scaled down.
    let mut home = testbed(45);
    let mut trace_cfg = TraceConfig::paper_default(60);
    trace_cfg.files = 40;
    trace_cfg.size_override = Some((256 << 10, 1 << 20));
    let trace = generate(&trace_cfg, 9);

    let mut pending: Vec<(OpId, usize)> = Vec::new();
    let mut stored = std::collections::HashSet::new();
    let flush = |home: &mut Cloud4Home, pending: &mut Vec<(OpId, usize)>| {
        for (op, _) in pending.drain(..) {
            let r = home.run_until_complete(op);
            assert!(r.outcome.is_ok(), "trace op failed: {:?}", r.outcome);
        }
    };
    for top in &trace.ops {
        let client = NodeId(top.client % home.node_count());
        let file = &trace.files[top.file];
        match top.op {
            OpKind::Store => {
                let obj = Object::synthetic(
                    &file.name,
                    file.content_seed,
                    file.size_bytes,
                    file.kind.content_type(),
                );
                pending.push((
                    home.store_object(client, obj, StorePolicy::MandatoryFirst, true),
                    top.file,
                ));
                stored.insert(top.file);
            }
            OpKind::Fetch => {
                assert!(stored.contains(&top.file), "trace invariant");
                // A fetch must not race its own file's in-flight store.
                if pending.iter().any(|(_, f)| *f == top.file) {
                    flush(&mut home, &mut pending);
                }
                pending.push((home.fetch_object(client, &file.name), usize::MAX));
            }
        }
        // Keep a small window of concurrent operations.
        if pending.len() >= 4 {
            let (op, _) = pending.remove(0);
            let r = home.run_until_complete(op);
            assert!(r.outcome.is_ok(), "trace op failed: {:?}", r.outcome);
        }
    }
    for (op, _) in pending {
        let r = home.run_until_complete(op);
        assert!(r.outcome.is_ok(), "trace op failed: {:?}", r.outcome);
    }
    assert_eq!(home.stats().ops_completed, 60);
}

#[test]
fn many_concurrent_operations_complete() {
    let mut home = testbed(46);
    let mut ops = Vec::new();
    for i in 0..12u64 {
        let obj = Object::synthetic(&format!("burst/{i}"), i, 1 << 20, "doc");
        ops.push(home.store_object(NodeId((i % 6) as usize), obj, StorePolicy::ForceHome, true));
    }
    for op in ops.drain(..) {
        home.run_until_complete(op).expect_ok();
    }
    for i in 0..12u64 {
        ops.push(home.fetch_object(NodeId(((i + 2) % 6) as usize), &format!("burst/{i}")));
    }
    home.run_until_idle();
    for op in ops {
        let r = home.take_report(op).expect("report present");
        assert!(r.outcome.is_ok());
    }
}

#[test]
fn dht_cache_serves_repeated_metadata_lookups() {
    let mut home = testbed(47);
    let obj = Object::synthetic("hot/popular.bin", 1, 256 << 10, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    for i in 0..10 {
        let op = home.fetch_object(NodeId((i % 5) + 1), "hot/popular.bin");
        home.run_until_complete(op).expect_ok();
    }
    let (hits, misses) = home.cache_stats();
    // In a six-node overlay most routes are one hop, so cache traffic is
    // modest — but the counters must be wired up.
    assert!(hits + misses < 10_000);
}

#[test]
fn crash_mid_transfer_aborts_the_fetch() {
    let mut home = testbed(48);
    let obj = Object::synthetic("mid/large.bin", 1, 20 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    // Start a 20 MiB fetch (≈2 s on the LAN), then crash the owner while
    // bytes are in flight.
    let op = home.fetch_object(NodeId(2), "mid/large.bin");
    home.run_for(Duration::from_millis(500));
    home.crash_node(NodeId(1));
    let r = home.run_until_complete(op);
    assert!(
        matches!(r.outcome, Err(OpError::OwnerUnreachable(_))),
        "expected an aborted transfer, got {:?}",
        r.outcome
    );
    // The failure is prompt, not a multi-second timeout.
    assert!(r.total().as_secs_f64() < 1.0, "failed at {:?}", r.total());
}
