//! Operation-semantics integration tests: cost breakdowns, processing
//! placement, concurrency, and the paper's fetch+process short-circuits.

use std::time::Duration;

use cloud4home::{
    Cloud4Home, Config, NodeId, Object, OpError, Placement, RoutePolicy, ServiceKind, StorePolicy,
};

fn testbed(seed: u64) -> Cloud4Home {
    Cloud4Home::new(Config::paper_testbed(seed))
}

/// Stores an object on a specific home node by making it the client with a
/// roomy mandatory bin (the default testbed nodes have space).
fn store_home(home: &mut Cloud4Home, client: usize, name: &str, bytes: u64, seed: u64) {
    let obj = Object::synthetic(name, seed, bytes, "jpeg");
    let op = home.store_object(NodeId(client), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
}

#[test]
fn fetch_breakdown_has_table1_components() {
    let mut home = testbed(20);
    store_home(&mut home, 1, "t1/obj.bin", 5 << 20, 1);
    let op = home.fetch_object(NodeId(2), "t1/obj.bin");
    let r = home.run_until_complete(op);
    r.expect_ok();
    let b = r.breakdown;
    assert!(b.inter_node > Duration::ZERO, "remote fetch moves bytes");
    assert!(b.inter_domain > Duration::ZERO, "XenSocket charged");
    assert!(b.dht > Duration::ZERO, "metadata lookup charged");
    assert!(b.disk > Duration::ZERO, "owner disk read charged");
    assert!(
        b.accounted() <= r.total(),
        "components fit inside the total"
    );
}

#[test]
fn dht_lookup_cost_is_roughly_constant_across_sizes() {
    let mut home = testbed(21);
    let mut lookups = Vec::new();
    for (i, mb) in [1u64, 10, 50].into_iter().enumerate() {
        let name = format!("t2/{mb}.bin");
        store_home(&mut home, 1, &name, mb << 20, i as u64);
        let op = home.fetch_object(NodeId(2), &name);
        let r = home.run_until_complete(op);
        r.expect_ok();
        lookups.push(r.breakdown.dht);
    }
    let min = lookups.iter().min().unwrap();
    let max = lookups.iter().max().unwrap();
    assert!(
        max.as_millis() <= min.as_millis() + 20,
        "DHT lookups should not scale with object size: {lookups:?}"
    );
}

#[test]
fn inter_node_cost_scales_with_object_size() {
    let mut home = testbed(22);
    let mut costs = Vec::new();
    for (i, mb) in [1u64, 10].into_iter().enumerate() {
        let name = format!("t3/{mb}.bin");
        store_home(&mut home, 1, &name, mb << 20, i as u64);
        let op = home.fetch_object(NodeId(2), &name);
        let r = home.run_until_complete(op);
        r.expect_ok();
        costs.push(r.breakdown.inter_node.as_secs_f64());
    }
    let ratio = costs[1] / costs[0];
    assert!(
        (6.0..14.0).contains(&ratio),
        "10 MiB should cost ~10x 1 MiB on the LAN, got {ratio:.2}"
    );
}

#[test]
fn home_fetch_is_much_faster_and_steadier_than_cloud_fetch() {
    let mut home = testbed(23);
    store_home(&mut home, 1, "t4/home.bin", 5 << 20, 1);
    let obj = Object::synthetic("t4/cloud.bin", 2, 5 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceCloud, true);
    home.run_until_complete(op).expect_ok();

    let op = home.fetch_object(NodeId(2), "t4/home.bin");
    let home_time = home.run_until_complete(op).total();
    let op = home.fetch_object(NodeId(2), "t4/cloud.bin");
    let cloud_time = home.run_until_complete(op).total();
    assert!(
        cloud_time.as_secs_f64() > 10.0 * home_time.as_secs_f64(),
        "paper Figure 4: cloud access dwarfs home access ({home_time:?} vs {cloud_time:?})"
    );
}

#[test]
fn process_auto_picks_the_desktop_for_midsize_images() {
    let mut home = testbed(24);
    store_home(&mut home, 0, "t5/img.jpg", 1 << 20, 1);
    let op = home.process_object(
        NodeId(0),
        "t5/img.jpg",
        ServiceKind::FaceDetect,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert_eq!(out.exec_target.as_deref(), Some("desktop"));
    assert!(
        r.breakdown.decision > Duration::ZERO,
        "decision time charged"
    );
    assert!(r.breakdown.exec > Duration::ZERO);
    assert!(out.summary.is_some());
}

#[test]
fn pinned_placements_order_as_figure7_expects_at_1mib() {
    let mut home = testbed(25);
    store_home(&mut home, 0, "t6/img.jpg", 1 << 20, 1);
    let mut totals = std::collections::HashMap::new();
    for (label, placement) in [
        ("netbook", Placement::Pin(NodeId(0))),
        ("desktop", Placement::Pin(NodeId(5))),
        ("cloud", Placement::Cloud),
    ] {
        let op =
            home.process_object_at(NodeId(0), "t6/img.jpg", ServiceKind::FaceDetect, placement);
        let r = home.run_until_complete(op);
        r.expect_ok();
        totals.insert(label, r.total());
    }
    assert!(
        totals["desktop"] < totals["netbook"],
        "movement to the desktop pays off at 1 MiB"
    );
    assert!(
        totals["cloud"] > totals["desktop"],
        "WAN movement makes the cloud lose at 1 MiB"
    );
}

#[test]
fn fetch_and_process_short_circuits_to_capable_requester() {
    let mut home = testbed(26);
    // netbook-0 provides the surveillance services in the paper testbed.
    store_home(&mut home, 2, "t7/img.jpg", 256 << 10, 1);
    let op = home.fetch_and_process(
        NodeId(0),
        "t7/img.jpg",
        ServiceKind::FaceRecognize,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert_eq!(
        out.exec_target.as_deref(),
        Some("netbook-0"),
        "the requesting node is capable and must run the service itself"
    );
    // The short-circuit skips the resource-query decision.
    assert!(r.breakdown.decision < Duration::from_millis(50));
}

#[test]
fn fetch_and_process_falls_back_to_capable_owner() {
    let mut home = testbed(27);
    // Owner = desktop (capable); requester = netbook-2 (no services).
    store_home(&mut home, 5, "t8/img.jpg", 256 << 10, 1);
    let op = home.fetch_and_process(
        NodeId(2),
        "t8/img.jpg",
        ServiceKind::FaceDetect,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert_eq!(out.exec_target.as_deref(), Some("desktop"));
}

#[test]
fn process_without_any_provider_fails() {
    let mut config = Config::paper_testbed(28);
    for n in &mut config.nodes {
        n.services.clear();
    }
    config.cloud.as_mut().unwrap().services.clear();
    let mut home = Cloud4Home::new(config);
    store_home(&mut home, 0, "t9/img.jpg", 1 << 20, 1);
    let op = home.process_object(
        NodeId(0),
        "t9/img.jpg",
        ServiceKind::FaceDetect,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    assert!(matches!(r.outcome, Err(OpError::ServiceUnavailable(_))));
}

#[test]
fn cloud_only_service_executes_in_the_cloud() {
    let mut config = Config::paper_testbed(29);
    for n in &mut config.nodes {
        n.services.clear();
    }
    let mut home = Cloud4Home::new(config);
    store_home(&mut home, 0, "t10/img.jpg", 512 << 10, 1);
    let op = home.process_object(
        NodeId(0),
        "t10/img.jpg",
        ServiceKind::FaceDetect,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert_eq!(out.exec_target.as_deref(), Some("cloud"));
}

#[test]
fn concurrent_lan_fetches_contend_for_bandwidth() {
    let mut home = testbed(30);
    store_home(&mut home, 1, "t11/a.bin", 20 << 20, 1);
    store_home(&mut home, 2, "t11/b.bin", 20 << 20, 2);

    // Solo baseline.
    let op = home.fetch_object(NodeId(3), "t11/a.bin");
    let solo = home.run_until_complete(op).total();

    // Two concurrent fetches crossing the same shared LAN segment.
    let op_a = home.fetch_object(NodeId(3), "t11/a.bin");
    let op_b = home.fetch_object(NodeId(4), "t11/b.bin");
    let t_a = home.run_until_complete(op_a).total();
    let t_b = home.run_until_complete(op_b).total();
    let slowest = t_a.max(t_b);
    assert!(
        slowest.as_secs_f64() > 1.3 * solo.as_secs_f64(),
        "two 20 MiB flows on a 95.5 Mbps LAN must contend: solo {solo:?}, concurrent {slowest:?}"
    );
}

#[test]
fn transcode_produces_smaller_output_and_reports_it() {
    let mut home = testbed(31);
    store_home(&mut home, 1, "t12/video.avi", 4 << 20, 1);
    let op = home.process_object(
        NodeId(1),
        "t12/video.avi",
        ServiceKind::Transcode,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert!(out.bytes < 4 << 20, "converted output is smaller");
    assert!(out.summary.as_deref().unwrap_or("").contains("converted"));
}

#[test]
fn loaded_node_slows_concurrent_execution() {
    let mut home = testbed(32);
    store_home(&mut home, 0, "t13/a.jpg", 1 << 20, 1);
    store_home(&mut home, 0, "t13/b.jpg", 1 << 20, 2);
    // Solo execution pinned at the desktop.
    let op = home.process_object_at(
        NodeId(0),
        "t13/a.jpg",
        ServiceKind::FaceDetect,
        Placement::Pin(NodeId(5)),
    );
    let solo = home.run_until_complete(op).breakdown.exec;
    // Two executions racing on the same node.
    let op_a = home.process_object_at(
        NodeId(0),
        "t13/a.jpg",
        ServiceKind::FaceDetect,
        Placement::Pin(NodeId(5)),
    );
    let op_b = home.process_object_at(
        NodeId(0),
        "t13/b.jpg",
        ServiceKind::FaceDetect,
        Placement::Pin(NodeId(5)),
    );
    let e_a = home.run_until_complete(op_a).breakdown.exec;
    let e_b = home.run_until_complete(op_b).breakdown.exec;
    assert!(
        e_a.max(e_b) > solo,
        "the second task must see a loaded node: solo {solo:?} vs {e_a:?}/{e_b:?}"
    );
}

#[test]
fn battery_saver_routes_away_from_netbooks() {
    let mut config = Config::paper_testbed(33);
    // Both a netbook and the desktop provide transcoding.
    config.nodes[0].services = vec![ServiceKind::Transcode];
    let mut home = Cloud4Home::new(config);
    store_home(&mut home, 0, "t14/video.avi", 2 << 20, 1);
    let op = home.process_object(
        NodeId(0),
        "t14/video.avi",
        ServiceKind::Transcode,
        RoutePolicy::BatterySaver,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert_eq!(
        out.exec_target.as_deref(),
        Some("desktop"),
        "battery saver avoids the battery-powered netbook"
    );
}

#[test]
fn process_on_cloud_stored_object_can_run_in_cloud_without_wan_movement() {
    let mut home = testbed(34);
    let obj = Object::synthetic("t15/big.avi", 1, 30 << 20, "avi");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceCloud, true);
    home.run_until_complete(op).expect_ok();
    // For a 30 MiB object already in the cloud, processing at the cloud
    // avoids moving it back over the WAN: Auto must pick the cloud.
    let op = home.process_object(
        NodeId(0),
        "t15/big.avi",
        ServiceKind::Transcode,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    assert_eq!(out.exec_target.as_deref(), Some("cloud"));
    // Only the (smaller, transcoded) result crosses the WAN instead of the
    // full 30 MiB source — fetching the source home first would add ≈230 s
    // of WAN transfer before execution even starts.
    assert!(
        r.total().as_secs_f64() < 200.0,
        "processing in place avoids moving the source over the WAN: {:?}",
        r.total()
    );
}
