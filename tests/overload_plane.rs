//! Acceptance tests for the overload-protection plane: SLO-driven load
//! shedding under an open-loop flash crowd, fast-fail semantics of shed
//! operations, retry budgets bounding retry amplification, circuit breakers
//! around a crashed peer, retry accounting reconciliation, and the plane's
//! determinism (on) and invisibility (off).

use std::collections::BTreeMap;
use std::time::Duration;

use c4h_workloads::{arrivals, Arrival, OpKind, OpenLoopConfig};
use cloud4home::{Cloud4Home, Config, NodeId, Object, OpError, OpReport, StorePolicy};

/// Bytes per open-loop operation: big enough that a flash crowd saturates
/// the shared home LAN, small enough that steady load clears it.
const OBJ_BYTES: u64 = 256 << 10;

/// The fetch objective the flash-crowd experiments steer by.
const FETCH_SLO_MS: u64 = 2_000;
/// The store objective (stores fan out and write disks; give them slack).
const STORE_SLO_MS: u64 = 4_000;

/// Testbed with tight (but steady-state achievable) SLOs and tracing on.
fn frontier_config(seed: u64) -> Config {
    let mut config = Config::paper_testbed(seed);
    config.tracing = true;
    config.slo_ms = BTreeMap::from([
        ("fetch".to_owned(), FETCH_SLO_MS),
        ("store".to_owned(), STORE_SLO_MS),
    ]);
    // A short SLO window so the sliding p99 tracks the flash in near real
    // time — with the default 30 s window the pre-flash samples dominate
    // and the breach signal lags the overload by seconds.
    config.health_window_ms = 5_000;
    config
}

/// The same testbed with the overload plane switched on: an aggressive
/// SLO-driven shed controller plus per-tenant inflight caps. The caps are
/// the proactive half — they bound the queue (and with it every admitted
/// op's sojourn) *before* the first over-SLO completion can land, which a
/// purely reactive controller cannot do: by the time one op has proven the
/// SLO blown, every op admitted in the meantime is already doomed.
fn protected_config(seed: u64) -> Config {
    let mut config = frontier_config(seed);
    config.overload.enabled = true;
    config.overload.shed_step_permille = 450;
    config.overload.shed_decay_permille = 10;
    config.overload.shed_max_permille = 950;
    // 4 tenants x 16 admitted-but-incomplete ops ~= 64 queued transfers,
    // about 1.4 s of LAN backlog at 256 KiB each: under the 2 s objective.
    config.overload.tenant_max_inflight = 16;
    config
}

/// A steady stream that surges 10x for four seconds in the middle: the
/// surge offers roughly twice the home LAN's capacity, building a backlog
/// that blows the fetch objective unless admissions are shed.
fn flash_stream() -> Vec<Arrival> {
    let config = OpenLoopConfig::steady(10.0, Duration::from_secs(15), 4).with_flash(
        Duration::from_secs(3),
        Duration::from_secs(5),
        16.0,
    );
    arrivals(&config, 91)
}

/// Pre-stores the fetch catalog (each object on its tenant's own node) so
/// open-loop fetches always have a home holder.
fn seed_catalog(home: &mut Cloud4Home, tenants: usize, catalog: usize) -> Vec<String> {
    let mut names = Vec::with_capacity(catalog);
    for i in 0..catalog {
        let name = format!("catalog/obj-{i:03}.bin");
        let obj = Object::synthetic(&name, 10_000 + i as u64, OBJ_BYTES, "doc");
        let op = home.store_object(NodeId(i % tenants), obj, StorePolicy::MandatoryFirst, true);
        home.run_until_complete(op).expect_ok();
        names.push(name);
    }
    home.run_until_idle();
    names
}

/// Replays an open-loop arrival stream against the deployment: each arrival
/// is submitted at its appointed virtual time regardless of how far behind
/// the system is (that is the point), then the run drains to idle and every
/// report is collected.
fn drive_open_loop(home: &mut Cloud4Home, stream: &[Arrival], catalog: &[String]) -> Vec<OpReport> {
    let start = home.now();
    let mut ids = Vec::with_capacity(stream.len());
    for (n, a) in stream.iter().enumerate() {
        let target = start + a.at;
        if let Some(gap) = target.checked_duration_since(home.now()) {
            home.run_for(gap);
        }
        let client = NodeId(a.tenant);
        let id = match a.op {
            OpKind::Store => {
                let name = format!("open/st-{n:05}.bin");
                let obj = Object::synthetic(&name, 50_000 + n as u64, OBJ_BYTES, "doc");
                home.store_object(client, obj, StorePolicy::MandatoryFirst, true)
            }
            OpKind::Fetch => home.fetch_object(client, &catalog[a.object % catalog.len()]),
        };
        ids.push(id);
    }
    home.run_until_idle();
    ids.iter()
        .map(|&id| home.take_report(id).expect("run drained to idle"))
        .collect()
}

/// Whether a completed report is an admission-control rejection.
fn is_shed(r: &OpReport) -> bool {
    matches!(r.outcome, Err(OpError::Overloaded(_)))
}

/// The SLO (in ns) that applies to a report's kind.
fn slo_ns(r: &OpReport) -> u64 {
    let ms = if r.kind == "fetch" {
        FETCH_SLO_MS
    } else {
        STORE_SLO_MS
    };
    ms * 1_000_000
}

/// p99 latency in ns over a set of reports (0 when empty).
fn p99_ns(reports: &[&OpReport]) -> u64 {
    if reports.is_empty() {
        return 0;
    }
    let mut lat: Vec<u64> = reports
        .iter()
        .map(|r| r.total().as_nanos() as u64)
        .collect();
    lat.sort_unstable();
    lat[(lat.len() - 1) * 99 / 100]
}

/// Ops that completed Ok within their kind's SLO — the goodput numerator.
fn goodput(reports: &[OpReport]) -> usize {
    reports
        .iter()
        .filter(|r| r.outcome.is_ok() && (r.total().as_nanos() as u64) <= slo_ns(r))
        .count()
}

#[test]
fn flash_crowd_shedding_keeps_admitted_p99_within_slo() {
    let stream = flash_stream();

    // Baseline: no protection. The flash crowd queues everything behind
    // the saturated LAN and the p99 blows through the objective.
    let mut base = Cloud4Home::new(frontier_config(4242));
    let catalog = seed_catalog(&mut base, 4, 12);
    let base_reports = drive_open_loop(&mut base, &stream, &catalog);
    let base_ok: Vec<&OpReport> = base_reports.iter().filter(|r| r.outcome.is_ok()).collect();
    let base_goodput = goodput(&base_reports);
    assert_eq!(base.stats().ops_shed, 0, "plane off must never shed");
    assert!(
        base_ok
            .iter()
            .any(|r| (r.total().as_nanos() as u64) > slo_ns(r)),
        "the flash crowd must actually overload the unprotected testbed"
    );

    // Protected: the shed controller reacts to SLO breaches by rejecting a
    // ramping fraction of admissions, keeping the admitted ops' latency
    // under control.
    let mut prot = Cloud4Home::new(protected_config(4242));
    let catalog = seed_catalog(&mut prot, 4, 12);
    let prot_reports = drive_open_loop(&mut prot, &stream, &catalog);

    let shed: Vec<&OpReport> = prot_reports.iter().filter(|r| is_shed(r)).collect();
    let admitted: Vec<&OpReport> = prot_reports.iter().filter(|r| !is_shed(r)).collect();
    assert!(!shed.is_empty(), "the flash crowd must trigger shedding");
    assert_eq!(prot.stats().ops_shed, shed.len() as u64);

    // Admitted fetches' p99 stays within the fetch objective; admitted
    // stores within theirs.
    for kind in ["fetch", "store"] {
        let of_kind: Vec<&OpReport> = admitted
            .iter()
            .copied()
            .filter(|r| r.kind == kind && r.outcome.is_ok())
            .collect();
        let p99 = p99_ns(&of_kind);
        let slo = if kind == "fetch" {
            FETCH_SLO_MS
        } else {
            STORE_SLO_MS
        } * 1_000_000;
        assert!(
            p99 <= slo,
            "admitted {kind} p99 {:.1} ms must stay within the {} ms objective",
            p99 as f64 / 1e6,
            slo / 1_000_000
        );
    }

    // Shedding must not cost meaningful goodput: within 20% of the
    // unprotected run's ok-within-SLO throughput.
    let prot_goodput = goodput(&prot_reports);
    assert!(
        prot_goodput * 5 >= base_goodput * 4,
        "goodput with shedding ({prot_goodput}) must stay within 20% of the \
         no-shed peak ({base_goodput})"
    );

    // The plane leaves typed telemetry behind.
    let snap = prot.telemetry().snapshot();
    assert!(
        snap.counter("shed.fetch") + snap.counter("shed.store") >= shed.len() as u64,
        "typed shed counters must cover every rejection"
    );
    assert!(
        snap.instants().any(|i| i.name == "shed.drop"),
        "rejections must leave trace instants"
    );
    assert!(
        prot.shed_text().contains("drop_permille="),
        "{}",
        prot.shed_text()
    );
}

#[test]
fn shed_operations_fail_fast_as_overloaded() {
    let stream = flash_stream();
    let mut home = Cloud4Home::new(protected_config(555));
    let catalog = seed_catalog(&mut home, 4, 12);
    let reports = drive_open_loop(&mut home, &stream, &catalog);

    let shed: Vec<&OpReport> = reports.iter().filter(|r| is_shed(r)).collect();
    assert!(!shed.is_empty(), "the flash crowd must trigger shedding");
    for r in &shed {
        // Rejected at admission: zero virtual time consumed, no channel
        // transfer, no retries, no failovers.
        assert_eq!(
            r.total(),
            Duration::ZERO,
            "shed op must fail instantly: {r:?}"
        );
        assert_eq!(r.retries, 0);
        assert_eq!(r.failovers, 0);
        match &r.outcome {
            Err(OpError::Overloaded(name)) => assert_eq!(name.as_str(), r.object.as_str()),
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
}

#[test]
fn retry_budget_bounds_retry_amplification() {
    // Plane off: a fetch whose every holder crashed retries (backoff capped
    // at 5 s) until the 60 s op deadline.
    let run = |protected: bool| -> (Cloud4Home, OpReport) {
        let mut config = frontier_config(777);
        config.replication = 2;
        if protected {
            config.overload.enabled = true;
            config.overload.retry_budget = 3;
            config.overload.retry_refill_per_sec = 0;
        }
        let mut home = Cloud4Home::new(config);
        let obj = Object::synthetic("fragile/replicated.bin", 17, OBJ_BYTES, "doc");
        let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();
        home.run_until_idle();
        let holders: Vec<usize> = (0..home.node_count())
            .filter(|&i| home.objects_on(NodeId(i)) > 0)
            .collect();
        assert!(holders.len() >= 2, "replication must place two copies");
        let reader = (0..home.node_count())
            .find(|i| !holders.contains(i))
            .expect("a non-holder survives");
        for &h in &holders {
            home.crash_node(NodeId(h));
        }
        let op = home.fetch_object(NodeId(reader), "fragile/replicated.bin");
        let report = home.run_until_complete(op);
        assert!(report.outcome.is_err(), "all holders are down: {report:?}");
        (home, report)
    };

    let (unprotected, slow) = run(false);
    assert!(
        slow.total() >= Duration::from_secs(50),
        "without a budget the fetch must grind until its deadline, took {:?}",
        slow.total()
    );
    assert_eq!(unprotected.stats().retry_budget_denied, 0);

    let (protected, fast) = run(true);
    assert!(
        fast.total() < Duration::from_secs(10),
        "a 3-token budget must cut the retry loop short, took {:?}",
        fast.total()
    );
    assert!(
        protected.stats().retry_budget_denied >= 1,
        "the budget must record its denial"
    );
    let snap = protected.telemetry().snapshot();
    assert_eq!(
        snap.counter("retry.budget_denied"),
        protected.stats().retry_budget_denied
    );
    assert!(
        snap.instants().any(|i| i.name == "retry.budget_denied"),
        "denials must leave trace instants"
    );
}

#[test]
fn breaker_opens_on_crashed_peer_and_recovers_after_rejoin() {
    let mut config = frontier_config(999);
    config.overload.enabled = true;
    config.overload.breaker_failures = 2;
    config.overload.breaker_cooldown_ms = 10_000;
    let mut home = Cloud4Home::new(config);

    // Place the object on netbook-1 and confirm it serves fetches.
    let obj = Object::synthetic("brk/payload.bin", 5, OBJ_BYTES, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    assert!(
        home.objects_on(NodeId(1)) > 0,
        "the store must land locally"
    );
    let op = home.fetch_object(NodeId(2), "brk/payload.bin");
    home.run_until_complete(op).expect_ok();

    // Three concurrent fetches are mid-transfer when the holder crashes
    // (a lone 256 KiB fetch takes ~110 ms; three share the LAN): each
    // severed path charges the breaker, tripping it open.
    let pending: Vec<_> = [2usize, 3, 4]
        .iter()
        .map(|&c| home.fetch_object(NodeId(c), "brk/payload.bin"))
        .collect();
    home.run_for(Duration::from_millis(80));
    home.crash_node(NodeId(1));
    let failed = pending
        .into_iter()
        .filter(|&id| home.run_until_complete(id).outcome.is_err())
        .count();
    assert!(
        failed >= 2,
        "crash mid-flow must fail the in-flight fetches"
    );
    assert!(home.stats().breaker_trips >= 1, "the breaker must trip");
    assert!(
        home.breaker_text().contains("state=open"),
        "{}",
        home.breaker_text()
    );

    // The peer rejoins (bytes intact on its disk), but the breaker is
    // still inside its cooldown: traffic keeps failing fast without
    // touching the path.
    home.rejoin_node(NodeId(1)).expect("a live seed exists");
    let fast_fails_before = home.stats().breaker_fast_fails;
    let op = home.fetch_object(NodeId(2), "brk/payload.bin");
    let report = home.run_until_complete(op);
    assert!(
        report.outcome.is_err(),
        "open breaker must fast-fail: {report:?}"
    );
    assert!(
        report.total() < Duration::from_secs(5),
        "fast-fail must not grind through retries, took {:?}",
        report.total()
    );
    assert!(home.stats().breaker_fast_fails > fast_fails_before);

    // After the cooldown a half-open probe is let through; its success
    // closes the breaker and traffic resumes.
    home.run_for(Duration::from_secs(11));
    let op = home.fetch_object(NodeId(2), "brk/payload.bin");
    home.run_until_complete(op).expect_ok();
    assert!(
        home.breaker_text().contains("state=closed"),
        "{}",
        home.breaker_text()
    );
    let snap = home.telemetry().snapshot();
    assert!(snap.counter("breaker.trip") >= 1);
    assert!(snap.counter("breaker.close") >= 1);
    assert!(snap.counter("breaker.fast_fail") >= 1);
}

#[test]
fn plane_on_runs_are_deterministic_under_a_fixed_seed() {
    let run = || {
        let stream = flash_stream();
        let mut home = Cloud4Home::new(protected_config(31337));
        let catalog = seed_catalog(&mut home, 4, 12);
        drive_open_loop(&mut home, &stream, &catalog);
        home
    };
    let a = run();
    let b = run();
    assert_eq!(a.now(), b.now(), "same-seed runs diverged in virtual time");
    assert!(a.prometheus_text() == b.prometheus_text());
    assert!(a.series_json() == b.series_json());
    assert_eq!(a.shed_text(), b.shed_text());
    assert_eq!(a.breaker_text(), b.breaker_text());
}

#[test]
fn plane_off_is_invisible() {
    // With the plane at its default (off), no shed/breaker/budget artifact
    // may appear anywhere — counters, stats, or the text surfaces.
    let mut home = Cloud4Home::new(frontier_config(2024));
    let catalog = seed_catalog(&mut home, 4, 8);
    let stream = arrivals(&OpenLoopConfig::steady(10.0, Duration::from_secs(10), 4), 7);
    let reports = drive_open_loop(&mut home, &stream, &catalog);
    assert!(reports.iter().all(|r| !is_shed(r)));

    let stats = home.stats();
    assert_eq!(stats.ops_shed, 0);
    assert_eq!(stats.retry_budget_denied, 0);
    assert_eq!(stats.breaker_trips, 0);
    assert_eq!(stats.breaker_fast_fails, 0);
    let snap = home.telemetry().snapshot();
    for counter in [
        "shed.fetch",
        "shed.store",
        "retry.budget_denied",
        "breaker.trip",
        "breaker.close",
        "breaker.fast_fail",
    ] {
        assert_eq!(snap.counter(counter), 0, "{counter} must stay zero");
    }
    assert!(
        !snap
            .instants()
            .any(|i| i.name == "shed.drop" || i.name == "breaker.trip"),
        "no plane instants may appear while disabled"
    );
    assert!(home.shed_text().contains("overload plane disabled"));
}

#[test]
fn retry_accounting_reconciles_across_stats_reports_and_trace() {
    // A lossy network provokes DHT retries; every surface that counts them
    // must agree: per-op reports, aggregate RunStats, typed counters, and
    // raw trace instants.
    let mut home = Cloud4Home::new(frontier_config(808));
    home.set_message_loss(0.25);
    let mut reports = Vec::new();
    for i in 0..10u64 {
        let name = format!("lossy/obj-{i}.bin");
        let obj = Object::synthetic(&name, 100 + i, 512 << 10, "doc");
        let op = home.store_object(NodeId((i % 4) as usize), obj, StorePolicy::ForceHome, true);
        reports.push(home.run_until_complete(op));
        let op = home.fetch_object(NodeId(((i + 1) % 4) as usize), &name);
        reports.push(home.run_until_complete(op));
    }
    home.run_until_idle();

    let stats = home.stats();
    let snap = home.telemetry().snapshot();
    let report_retries: u64 = reports.iter().map(|r| u64::from(r.retries)).sum();
    assert!(report_retries > 0, "a 25% loss rate must force retries");
    assert_eq!(
        report_retries, stats.dht_retries,
        "per-op retry counts must sum to the aggregate"
    );
    let retry_instants = snap.instants().filter(|i| i.name == "dht.retry").count() as u64;
    assert_eq!(
        retry_instants, stats.dht_retries,
        "every retry must leave exactly one trace instant"
    );
    let failover_instants = snap
        .instants()
        .filter(|i| i.name == "fetch.failover")
        .count() as u64;
    assert_eq!(
        failover_instants, stats.fetch_failovers,
        "every failover must leave exactly one trace instant"
    );
}

#[test]
fn fetch_backoff_waits_never_exceed_the_jittered_cap() {
    // A replicated object with every holder down exercises the capped
    // exponential backoff path until the op deadline. No single recorded
    // backoff wait may exceed the 5 s cap times the 1.2 jitter ceiling.
    let mut config = frontier_config(606);
    config.replication = 2;
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("capped/replicated.bin", 23, OBJ_BYTES, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    home.run_until_idle();
    let holders: Vec<usize> = (0..home.node_count())
        .filter(|&i| home.objects_on(NodeId(i)) > 0)
        .collect();
    let reader = (0..home.node_count())
        .find(|i| !holders.contains(i))
        .expect("a non-holder survives");
    for &h in &holders {
        home.crash_node(NodeId(h));
    }
    let op = home.fetch_object(NodeId(reader), "capped/replicated.bin");
    let report = home.run_until_complete(op);
    assert!(report.outcome.is_err());

    let snap = home.telemetry().snapshot();
    let cap_ns = (5_000_000_000f64 * 1.2) as u64;
    let mut waits = 0;
    for s in snap.spans().filter(|s| s.name == "fetch.retry_wait") {
        waits += 1;
        let dur = s.end_ns.saturating_sub(s.start_ns);
        assert!(
            dur <= cap_ns,
            "backoff wait {dur} ns exceeds the jittered 5 s cap"
        );
    }
    assert!(
        waits >= 8,
        "a 60 s deadline over capped backoff must record many waits, got {waits}"
    );
}
