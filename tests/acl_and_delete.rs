//! Integration tests for the access-control and deletion extensions
//! (the paper's future-work item (i): "richer access control methods and
//! policies").

use c4h_chimera::Key;
use cloud4home::{
    Acl, Cloud4Home, Config, NodeId, Object, OpError, RoutePolicy, ServiceKind, StorePolicy,
};

fn testbed(seed: u64) -> Cloud4Home {
    Cloud4Home::new(Config::paper_testbed(seed))
}

fn node_key(home: &Cloud4Home, id: NodeId) -> Key {
    Key::from_name(home.node_name(id))
}

#[test]
fn public_objects_are_readable_by_everyone() {
    let mut home = testbed(60);
    let obj = Object::new("acl/public.txt", &b"hello"[..], "txt");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    for reader in 1..home.node_count() {
        let op = home.fetch_object(NodeId(reader), "acl/public.txt");
        home.run_until_complete(op).expect_ok();
    }
}

#[test]
fn owner_only_objects_reject_other_readers() {
    let mut home = testbed(61);
    let obj = Object::new("acl/secret.txt", &b"pin 1234"[..], "txt").with_acl(Acl::OwnerOnly);
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    // The owner reads fine.
    let op = home.fetch_object(NodeId(2), "acl/secret.txt");
    home.run_until_complete(op).expect_ok();
    // Anyone else is denied.
    let op = home.fetch_object(NodeId(3), "acl/secret.txt");
    let r = home.run_until_complete(op);
    assert!(
        matches!(r.outcome, Err(OpError::AccessDenied(_))),
        "{:?}",
        r.outcome
    );
}

#[test]
fn restricted_objects_admit_listed_nodes_only() {
    let mut home = testbed(62);
    let friend = node_key(&home, NodeId(4));
    let obj =
        Object::new("acl/shared.txt", &b"party at 8"[..], "txt").with_acl(Acl::Nodes(vec![friend]));
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    let op = home.fetch_object(NodeId(4), "acl/shared.txt");
    home.run_until_complete(op).expect_ok();
    let op = home.fetch_object(NodeId(3), "acl/shared.txt");
    let r = home.run_until_complete(op);
    assert!(matches!(r.outcome, Err(OpError::AccessDenied(_))));
}

#[test]
fn acl_gates_processing_too() {
    let mut home = testbed(63);
    let obj = Object::synthetic("acl/img.jpg", 1, 512 << 10, "jpeg").with_acl(Acl::OwnerOnly);
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    // Processing from another node is denied before any placement work.
    let op = home.process_object(
        NodeId(3),
        "acl/img.jpg",
        ServiceKind::FaceDetect,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    assert!(matches!(r.outcome, Err(OpError::AccessDenied(_))));
    // The owner may process.
    let op = home.process_object(
        NodeId(2),
        "acl/img.jpg",
        ServiceKind::FaceDetect,
        RoutePolicy::Performance,
    );
    home.run_until_complete(op).expect_ok();
}

#[test]
fn delete_removes_home_object_end_to_end() {
    let mut home = testbed(64);
    let obj = Object::synthetic("del/data.bin", 1, 2 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    assert_eq!(home.objects_on(NodeId(1)), 1);

    let op = home.delete_object(NodeId(1), "del/data.bin");
    let r = home.run_until_complete(op);
    r.expect_ok();
    assert!(
        r.breakdown.dht.as_millis() > 0,
        "delete pays metadata costs"
    );
    assert_eq!(home.objects_on(NodeId(1)), 0, "bytes unlinked");

    let op = home.fetch_object(NodeId(2), "del/data.bin");
    let r = home.run_until_complete(op);
    assert!(matches!(r.outcome, Err(OpError::NotFound(_))));
}

#[test]
fn delete_removes_cloud_object_end_to_end() {
    let mut home = testbed(65);
    let obj = Object::synthetic("del/cloud.bin", 2, 1 << 20, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceCloud, true);
    home.run_until_complete(op).expect_ok();

    let op = home.delete_object(NodeId(0), "del/cloud.bin");
    let r = home.run_until_complete(op);
    assert!(r.expect_ok().via_cloud);

    let op = home.fetch_object(NodeId(1), "del/cloud.bin");
    let r = home.run_until_complete(op);
    assert!(matches!(r.outcome, Err(OpError::NotFound(_))));
}

#[test]
fn only_the_owner_may_delete() {
    let mut home = testbed(66);
    let obj = Object::new("del/mine.txt", &b"keep out"[..], "txt");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    let op = home.delete_object(NodeId(3), "del/mine.txt");
    let r = home.run_until_complete(op);
    assert!(matches!(r.outcome, Err(OpError::AccessDenied(_))));
    // Still fetchable afterwards.
    let op = home.fetch_object(NodeId(3), "del/mine.txt");
    home.run_until_complete(op).expect_ok();
}

#[test]
fn delete_of_missing_object_reports_not_found() {
    let mut home = testbed(67);
    let op = home.delete_object(NodeId(0), "del/ghost.bin");
    let r = home.run_until_complete(op);
    assert!(matches!(r.outcome, Err(OpError::NotFound(_))));
}

#[test]
fn name_can_be_reused_after_delete() {
    let mut home = testbed(68);
    let obj = Object::new("del/reuse.txt", &b"first"[..], "txt");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    let op = home.delete_object(NodeId(2), "del/reuse.txt");
    home.run_until_complete(op).expect_ok();

    // A different node can now own the name.
    let obj = Object::new("del/reuse.txt", &b"second!"[..], "txt");
    let op = home.store_object(NodeId(4), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    let op = home.fetch_object(NodeId(0), "del/reuse.txt");
    let r = home.run_until_complete(op);
    assert_eq!(r.expect_ok().bytes, 7);
}

#[test]
fn listing_tracks_stores_and_deletes() {
    let mut home = testbed(69);
    for i in 0..3u64 {
        let obj = Object::new(&format!("album/pic-{i}.jpg"), &b"x"[..], "jpeg");
        let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();
    }
    // Another directory stays separate.
    let obj = Object::new("other/file.txt", &b"y"[..], "txt");
    let op = home.store_object(NodeId(2), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    let op = home.list_objects(NodeId(3), "album");
    let r = home.run_until_complete(op);
    let listing = r.expect_ok().listing.clone().unwrap();
    assert_eq!(
        listing,
        vec!["album/pic-0.jpg", "album/pic-1.jpg", "album/pic-2.jpg"]
    );

    // Deleting removes from the listing via a tombstone entry.
    let op = home.delete_object(NodeId(1), "album/pic-1.jpg");
    home.run_until_complete(op).expect_ok();
    let op = home.list_objects(NodeId(3), "album");
    let r = home.run_until_complete(op);
    let listing = r.expect_ok().listing.clone().unwrap();
    assert_eq!(listing, vec!["album/pic-0.jpg", "album/pic-2.jpg"]);
}

#[test]
fn listing_empty_directory_is_empty() {
    let mut home = testbed(70);
    let op = home.list_objects(NodeId(0), "nothing/here");
    let r = home.run_until_complete(op);
    assert_eq!(r.expect_ok().listing.as_deref(), Some(&[][..]));
}

#[test]
fn cloud_stored_objects_appear_in_listings_too() {
    let mut home = testbed(71);
    let obj = Object::synthetic("backup/big.bin", 1, 1 << 20, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceCloud, true);
    home.run_until_complete(op).expect_ok();
    let op = home.list_objects(NodeId(4), "backup");
    let r = home.run_until_complete(op);
    assert_eq!(
        r.expect_ok().listing.as_deref(),
        Some(&["backup/big.bin".to_string()][..])
    );
}
