//! Regression tests for completion-vs-event interleaving at equal
//! timestamps — the ordering hazard class PR 6 fixed (flow completions
//! surfacing at queue-event instants) re-audited against wheel-bucketed
//! delivery.
//!
//! The four `net.advance()` call sites (`run_for`, `step`'s two branches,
//! `defer_flow_completions`) all promise: a flow completion landing at the
//! same virtual instant as queued events is routed to its waiter at that
//! instant, never stranded, and the interleaving is identical under the
//! same seed. These tests drive the paths hard — pipelined chunked
//! transfers make same-instant collisions routine because every chunk
//! boundary is a completion that can coincide with `OpSubWake`/`Tick`
//! events — and pin both liveness (no stalled waiter panics) and byte
//! determinism. The surgical single-instant ordering pin lives as a unit
//! test in `cloud4home::runtime` where the queue and flow engine are
//! directly reachable.

use std::time::Duration;

use cloud4home::{Cloud4Home, Config, NodeId, Object, OpId, StorePolicy};

/// Chunked, replicated, striped: maximal concurrent-completion pressure.
fn collision_config(seed: u64) -> Config {
    let mut config = Config::paper_testbed(seed);
    config.tracing = true;
    config.chunk_bytes = 32 << 10; // many chunk-completion instants
    config.chunk_window = 4;
    config.replication = 3;
    config.replica_quorum = 2; // stragglers detach to background flows
    config.fetch_sources = 3; // striped reads: concurrent sub-flows
    config
}

/// Launches a wave of overlapping stores and fetches without draining
/// between submissions, so dozens of flows are concurrently in flight.
fn stampede(home: &mut Cloud4Home) -> Vec<OpId> {
    let n = home.node_count();
    let mut ops = Vec::new();
    for i in 0..10u64 {
        let name = format!("collide/{i}.bin");
        let obj = Object::synthetic(&name, 7 + i, (96 + 32 * (i % 4)) << 10, "doc");
        ops.push(home.store_object(NodeId(i as usize % n), obj, StorePolicy::ForceHome, true));
    }
    // Overlap the stores with time-sliced progress, then pile fetches on
    // top while replica fan-out stragglers are still landing.
    home.run_for(Duration::from_millis(350));
    for i in 0..10u64 {
        let name = format!("collide/{i}.bin");
        ops.push(home.fetch_object(NodeId((i as usize + 2) % n), &name));
    }
    ops
}

/// Liveness: every waiter is continued even when chunk completions collide
/// with queued events at equal instants. A dropped completion would strand
/// an op and `run_until_complete`/`run_until_idle` would panic ("simulation
/// stalled").
#[test]
fn chunked_stampede_strands_no_waiters() {
    let mut home = Cloud4Home::new(collision_config(4242));
    let ops = stampede(&mut home);
    for op in ops {
        let report = home.run_until_complete(op);
        report.expect_ok();
    }
    home.run_until_idle();
    let stats = home.stats();
    assert!(
        stats.chunked_transfers > 0,
        "the workload must actually exercise chunk pipelining: {stats:?}"
    );
    assert!(
        stats.replicas_written > 0,
        "the workload must actually fan out replicas: {stats:?}"
    );
}

/// Determinism: the interleaving of same-instant completions and events is
/// a function of the seed alone — two runs agree on every exported byte.
#[test]
fn same_instant_interleaving_is_deterministic() {
    let run = || {
        let mut home = Cloud4Home::new(collision_config(77));
        let ops = stampede(&mut home);
        for op in ops {
            home.run_until_complete(op).expect_ok();
        }
        home.run_until_idle();
        (
            home.now(),
            format!("{:?}", home.stats()),
            home.metrics_json(),
        )
    };
    let (now_a, stats_a, metrics_a) = run();
    let (now_b, stats_b, metrics_b) = run();
    assert_eq!(now_a, now_b, "virtual end times diverged");
    assert_eq!(stats_a, stats_b, "stats diverged");
    assert!(metrics_a == metrics_b, "metrics exports diverged");
}
