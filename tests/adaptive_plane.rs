//! Integration tests for the heat-driven adaptive placement plane and
//! the repair-plane fixes that ride along with it: straggler-flow
//! failures repairing without any peer death, peer-failure scans
//! narrowed to the dead peer's holdings, bandwidth estimates reset on
//! crash, and (k, m) erasure-coded objects surviving `m` holder losses.

use std::fmt::Write as _;
use std::time::Duration;

use cloud4home::{Cloud4Home, Config, FaultEvent, NodeId, Object, StorePolicy};

/// A run with the adaptive plane disabled must be byte-identical no
/// matter how the (inert) adaptive knobs are set: the whole plane has to
/// be invisible until switched on.
#[test]
fn disabled_adaptive_knobs_do_not_perturb_runs() {
    let transcript = |mut config: Config| {
        config.tracing = true;
        let mut home = Cloud4Home::new(config);
        let mut t = String::new();
        for i in 0..4u64 {
            let name = format!("inert/obj-{i}.bin");
            let obj = Object::synthetic(&name, 50 + i, (96 + 32 * i) << 10, "doc");
            let op = home.store_object(NodeId(i as usize % 3), obj, StorePolicy::ForceHome, true);
            let _ = writeln!(t, "store -> {:?}", home.run_until_complete(op).outcome);
        }
        for i in 0..4u64 {
            let op = home.fetch_object(NodeId((i as usize + 2) % 5), &format!("inert/obj-{i}.bin"));
            let _ = writeln!(t, "fetch -> {:?}", home.run_until_complete(op).outcome);
        }
        home.run_until_idle();
        let _ = writeln!(t, "now_ns={}", home.now().as_nanos());
        let _ = writeln!(t, "stats={:?}", home.stats());
        t.push_str(&home.metrics_json());
        t.push_str(&home.prometheus_text());
        t
    };

    let baseline = transcript(Config::paper_testbed(77));

    let mut tweaked = Config::paper_testbed(77);
    assert!(!tweaked.adaptive.enabled, "adaptive must default off");
    tweaked.adaptive.replication_max = 4;
    tweaked.adaptive.heat_alpha = 0.9;
    tweaked.adaptive.hot_per_min = 50.0;
    tweaked.adaptive.cold_per_min = 0.25;
    tweaked.adaptive.interval_ms = 1000;
    tweaked.adaptive.ec_threshold_bytes = 4096;
    tweaked.adaptive.ec_k = 4;
    tweaked.adaptive.ec_m = 1;
    let perturbed = transcript(tweaked);

    assert_eq!(
        baseline, perturbed,
        "inert adaptive knobs changed a disabled run's bytes"
    );
}

/// A detached fan-out straggler severed by a transient partition — no
/// peer dies — must still be healed: the abort routes the object into the
/// repair daemon, and the anti-entropy sweep retries once the network is
/// back.
#[test]
fn straggler_flow_failure_repairs_without_peer_death() {
    let mut config = Config::paper_testbed(83);
    config.replication = 3;
    config.replica_quorum = 1; // publish early; stragglers detach
    config.anti_entropy_ms = 5_000;
    let mut home = Cloud4Home::new(config);

    let obj = Object::synthetic("straggle/archive.bin", 9, 8 << 20, "tar");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    assert!(
        home.stats().quorum_publishes >= 1,
        "store should have published at quorum with a straggler in flight"
    );

    // A momentary full partition severs every in-flight transfer, then
    // heals. No node crashes at any point.
    home.apply_fault(FaultEvent::Partition(vec![
        vec![NodeId(0)],
        vec![NodeId(1)],
        vec![NodeId(2)],
        vec![NodeId(3)],
        vec![NodeId(4)],
    ]));
    assert!(
        home.live_copies("straggle/archive.bin") < 3,
        "the partition should have severed the straggler before it landed"
    );
    home.apply_fault(FaultEvent::Heal);

    home.run_for(Duration::from_secs(30));
    home.run_until_idle();

    for i in 0..home.node_count() {
        assert!(home.node_alive(NodeId(i)), "no peer may die in this test");
    }
    assert_eq!(
        home.live_copies("straggle/archive.bin"),
        3,
        "the repair plane must restore full replication without a peer death"
    );
    assert!(
        home.stats().repairs_completed >= 1,
        "the shortfall must be healed by a repair, not a lucky retransmit"
    );
}

/// A peer-failure scan must be proportional to the dead peer's holdings,
/// not the deployment's object count.
#[test]
fn peer_failure_scan_visits_only_dead_peers_holdings() {
    let mut config = Config::paper_testbed(84);
    config.replication = 2;
    config.anti_entropy_ms = 0; // isolate the failure-driven scan
    let mut home = Cloud4Home::new(config);

    let total = 12u64;
    for i in 0..total {
        let obj = Object::synthetic(&format!("narrow/obj-{i}.bin"), i, 128 << 10, "doc");
        let op = home.store_object(NodeId((i % 3) as usize), obj, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();
    }
    home.run_until_idle();

    let victim = NodeId(4);
    let victim_holdings = home.objects_on(victim) as u64;
    assert!(
        victim_holdings < total,
        "test needs a victim that holds only part of the corpus \
         (holds {victim_holdings} of {total})"
    );
    let visits_before = home.repair_scan_visits();

    home.crash_node(victim);
    home.run_for(Duration::from_secs(10));
    home.run_until_idle();

    let scan_visits = home.repair_scan_visits() - visits_before;
    assert!(
        scan_visits <= victim_holdings,
        "peer-failure scan visited {scan_visits} objects but the dead peer \
         held only {victim_holdings} — the scan is walking the whole index"
    );
}

/// The per-peer bandwidth EWMA must reset when its peer crashes: the
/// machine that rejoins later says nothing about the ghost that built
/// the estimate.
#[test]
fn peer_bandwidth_estimate_resets_on_crash() {
    let mut home = Cloud4Home::new(Config::paper_testbed(85));

    let obj = Object::synthetic("bw/sample.bin", 3, 512 << 10, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    for client in [2usize, 3, 4] {
        let op = home.fetch_object(NodeId(client), "bw/sample.bin");
        home.run_until_complete(op).expect_ok();
    }
    assert!(
        home.peer_bw_samples(NodeId(1)) > 0,
        "fetch transfers from the holder should have trained its estimate"
    );

    home.crash_node(NodeId(1));
    assert_eq!(
        home.peer_bw_samples(NodeId(1)),
        0,
        "a crash must reset the peer's bandwidth estimate to the prior"
    );

    home.rejoin_node(NodeId(1)).expect("live seed exists");
    assert_eq!(
        home.peer_bw_samples(NodeId(1)),
        0,
        "the rejoined instance starts cold until new transfers are observed"
    );
}

/// A cold, large object converts to (k, m) erasure-coded stripes, and
/// the coded form survives `m` simultaneous holder crashes: fetches
/// decode from any `k` survivors while the repair daemon rebuilds the
/// lost rows.
#[test]
fn erasure_coded_object_survives_m_holder_crashes() {
    let mut config = Config::paper_testbed(86);
    config.adaptive.enabled = true;
    let (k, m) = (config.adaptive.ec_k, config.adaptive.ec_m);
    let mut home = Cloud4Home::new(config);

    let size = 2u64 << 20; // over the 1 MiB conversion threshold
    let obj = Object::synthetic("cold/backup.bin", 17, size, "tar");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    // Never fetched → stone cold; the adaptive pass converts it.
    home.run_for(Duration::from_secs(15));
    assert!(
        home.is_erasure_coded("cold/backup.bin"),
        "a cold object over the threshold must convert to stripes"
    );
    let holders = home.stripe_holders("cold/backup.bin");
    assert_eq!(holders.len(), k + m, "one holder per code row");
    assert_eq!(
        home.live_copies("cold/backup.bin"),
        0,
        "conversion must strip the full copies"
    );

    // Lose m holders at once — the worst case the code tolerates.
    for &id in holders.iter().take(m) {
        home.crash_node(id);
    }

    // A decode fetch succeeds immediately from the k survivors, before
    // any repair lands. Pick a client that is still alive.
    let client = (0..home.node_count())
        .map(NodeId)
        .find(|&id| home.node_alive(id))
        .expect("live client exists");
    let op = home.fetch_object(client, "cold/backup.bin");
    let report = home.run_until_complete(op);
    assert_eq!(
        report.expect_ok().bytes,
        size,
        "decode fetch must reproduce the full object"
    );

    // The repair daemon rebuilds the lost rows from survivors.
    home.run_for(Duration::from_secs(30));
    home.run_until_idle();
    assert!(
        home.stats().repairs_completed >= m as u64,
        "every lost stripe row must be rebuilt"
    );
    let op = home.fetch_object(client, "cold/backup.bin");
    home.run_until_complete(op).expect_ok();
}

/// A hot object grows replicas toward its recent readers, and cooling
/// shrinks it back — but never below copies parked at recent readers.
#[test]
fn hot_object_grows_then_cools_back() {
    let mut config = Config::paper_testbed(87);
    config.adaptive.enabled = true;
    let mut home = Cloud4Home::new(config);

    let obj = Object::synthetic("hot/reel.bin", 21, 256 << 10, "mp4");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    assert_eq!(home.live_copies("hot/reel.bin"), 1);

    // A burst of fetches from node 3 heats the object well past the
    // hot band (fetch gaps of ~2 virtual seconds ≫ 4/min).
    for _ in 0..8 {
        let op = home.fetch_object(NodeId(3), "hot/reel.bin");
        home.run_until_complete(op).expect_ok();
        home.run_for(Duration::from_secs(2));
    }
    home.run_for(Duration::from_secs(10));
    home.run_until_idle();
    let grown = home.live_copies("hot/reel.bin");
    assert!(
        grown > 1,
        "a hot object must gain replicas (still at {grown})"
    );

    // Long silence cools it; copies shrink back toward the floor, except
    // copies parked at recent readers (reader affinity holds them).
    home.run_for(Duration::from_secs(300));
    home.run_until_idle();
    let cooled = home.live_copies("hot/reel.bin");
    assert!(
        cooled < grown || grown == 2,
        "a cold object must drop surplus replicas (still at {cooled})"
    );
    assert!(cooled >= 1, "shrinking must never drop the last copy");
}
