//! Invariant tests for the continuous health plane: gauge-sampling cadence,
//! SLO-window breach detection, critical-path attribution, and the
//! byte-determinism of every health export (Prometheus text, gauge series,
//! post-mortem dumps) across same-seed chaos runs.

use std::collections::BTreeMap;
use std::time::Duration;

use cloud4home::{Cloud4Home, Config, FaultEvent, FaultPlan, NodeId, Object, StorePolicy};

/// A config with tracing on and the default 500 ms health cadence.
fn traced_config(seed: u64) -> Config {
    let mut config = Config::paper_testbed(seed);
    config.tracing = true;
    config
}

/// Runs a small steady workload that keeps at least one operation in flight
/// for several sampling periods: four 2 MiB stores + fetches back to back.
fn steady_workload(home: &mut Cloud4Home) {
    for i in 0..4u64 {
        let name = format!("steady/obj-{i}.bin");
        let obj = Object::synthetic(&name, i + 1, 2 << 20, "doc");
        let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();
        let op = home.fetch_object(NodeId(3), &name);
        home.run_until_complete(op).expect_ok();
    }
    home.run_until_idle();
}

#[test]
fn gauge_samples_land_exactly_on_the_cadence() {
    let mut home = Cloud4Home::new(traced_config(310));
    let period_ns = 500 * 1_000_000u64;
    steady_workload(&mut home);

    let snap = home.telemetry().snapshot();
    let series = snap
        .series
        .get("runtime.ops_inflight")
        .expect("sampler records runtime gauges");
    let ts: Vec<u64> = series.points().iter().map(|&(t, _)| t).collect();
    assert!(
        ts.len() >= 3,
        "several sampling periods must elapse, got {} points",
        ts.len()
    );
    // While work is continuously in flight the sample chain never drops, so
    // every interior delta is exactly one period. Only the final point may
    // be off-cadence: `run_until_idle` flushes a closing sample at
    // quiescence.
    for pair in ts.windows(2).rev().skip(1) {
        assert_eq!(
            pair[1] - pair[0],
            period_ns,
            "interior samples must be exactly one period apart: {ts:?}"
        );
    }
    // Every gauge family is present and sampled at the same instants.
    for name in [
        "runtime.queue_depth",
        "runtime.flows_inflight",
        "runtime.background_jobs",
        "net.home-ethernet.util_permille",
        "node.netbook-0.cpu_milli",
        "node.netbook-0.dht_table",
        "node.desktop.disk_used_bytes",
    ] {
        let s = snap
            .series
            .get(name)
            .unwrap_or_else(|| panic!("missing gauge series `{name}`"));
        assert_eq!(
            s.points().len(),
            ts.len(),
            "`{name}` must be sampled on every row"
        );
    }
}

#[test]
fn slo_violations_fire_iff_the_window_p99_breaches() {
    // A 1 ms fetch objective is impossibly tight: every completed fetch
    // pushes the window p99 above it, so each completion breaches.
    let mut config = traced_config(311);
    config.slo_ms = BTreeMap::from([("fetch".to_owned(), 1u64)]);
    let mut home = Cloud4Home::new(config);
    steady_workload(&mut home);
    let snap = home.telemetry().snapshot();
    let fetches = snap.counter("op.fetch.ok") + snap.counter("op.fetch.err");
    assert!(fetches >= 4, "workload completed {fetches} fetches");
    assert_eq!(
        snap.counter("slo.violation.fetch"),
        fetches,
        "every fetch must breach a 1 ms objective"
    );
    assert!(
        snap.instants().any(|i| i.name == "slo.violation"),
        "breaches must leave trace instants"
    );

    // An absurdly loose objective is never breached by the same workload.
    let mut config = traced_config(311);
    config.slo_ms = BTreeMap::from([("fetch".to_owned(), 3_600_000u64)]);
    let mut home = Cloud4Home::new(config);
    steady_workload(&mut home);
    let snap = home.telemetry().snapshot();
    assert_eq!(snap.counter("slo.violation.fetch"), 0);
    assert!(
        !snap.instants().any(|i| i.name == "slo.violation"),
        "a 1-hour objective must never breach"
    );
}

#[test]
fn wan_bound_fetch_attributes_its_latency_to_the_wan() {
    let mut home = Cloud4Home::new(traced_config(312));
    let obj = Object::synthetic("cloud/archive.bin", 9, 4 << 20, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceCloud, true);
    home.run_until_complete(op).expect_ok();

    let op = home.fetch_object(NodeId(1), "cloud/archive.bin");
    let report = home.run_until_complete(op);
    assert!(report.expect_ok().via_cloud, "the bytes live in the cloud");

    // The bucket sums account for the whole operation, exactly.
    let total_ns = report.total().as_nanos() as u64;
    assert_eq!(
        report.critical_path.total_ns(),
        total_ns,
        "critical-path buckets must sum to the op duration"
    );
    // Pulling megabytes over a ~1.5 Mbps WAN dwarfs everything else.
    let (bucket, ns) = report.critical_path.dominant();
    assert_eq!(
        bucket, "wan",
        "cloud fetch must be WAN-dominated: {report:?}"
    );
    assert!(ns > total_ns / 2, "WAN time must exceed half the total");
    assert!(
        report.critical_path.dht_ns > 0,
        "metadata lookup was on-path"
    );

    // The aggregate RunStats mirror carries the same attribution.
    let stats = home.stats();
    assert!(stats.crit_wan_ns >= ns);
    assert_eq!(
        stats.crit_dht_ns
            + stats.crit_disk_ns
            + stats.crit_lan_ns
            + stats.crit_wan_ns
            + stats.crit_service_ns
            + stats.crit_backoff_ns
            + stats.crit_other_ns,
        home.telemetry()
            .snapshot()
            .histograms
            .iter()
            .filter(|(n, _)| n.starts_with("op.") && n.ends_with(".total_ns"))
            .map(|(_, h)| h.sum)
            .sum::<u64>(),
        "aggregate buckets must sum to aggregate op latency"
    );
}

/// A chaos run that is guaranteed to cut at least one post-mortem: both
/// holders of a replicated object crash before a fetch, on top of bursty
/// loss and a partition window.
fn chaos_run() -> Cloud4Home {
    let mut config = traced_config(313);
    config.replication = 2;
    let mut home = Cloud4Home::new(config);

    // Place an object, then find and crash every live holder.
    let obj = Object::synthetic("doomed/evidence.bin", 5, 512 << 10, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    home.run_until_idle();
    let holders: Vec<usize> = (0..home.node_count())
        .filter(|&i| {
            // Client 2 stays alive to issue the doomed fetch.
            i != 2 && home.objects_on(NodeId(i)) > 0
        })
        .collect();
    assert!(!holders.is_empty(), "the store must have placed bytes");

    let mut plan = FaultPlan::new()
        .at(
            Duration::ZERO,
            FaultEvent::BurstyLoss {
                mean_loss: 0.08,
                mean_burst_len: 6.0,
            },
        )
        .at(
            Duration::from_secs(6),
            FaultEvent::Partition(vec![vec![NodeId(1)]]),
        )
        .at(Duration::from_secs(20), FaultEvent::Heal);
    for &h in &holders {
        plan = plan.at(Duration::from_secs(2), FaultEvent::Crash(NodeId(h)));
    }
    home.inject_faults(plan);
    home.run_for(Duration::from_secs(4));

    // The fetch finds every holder dead (and the cloud holds no copy):
    // a hard failure that must cut a flight-recorder dump.
    let op = home.fetch_object(NodeId(2), "doomed/evidence.bin");
    let report = home.run_until_complete(op);
    assert!(report.outcome.is_err(), "all holders are down: {report:?}");

    // More traffic through the partition window, failures tolerated. The
    // clients must be live nodes (1 is partitioned off but still up).
    let reader = (0..home.node_count())
        .find(|i| !holders.contains(i) && *i != 1 && *i != 2)
        .unwrap_or(2);
    for i in 0..6u64 {
        let name = format!("chaos/load-{i}.bin");
        let obj = Object::synthetic(&name, 40 + i, 1 << 20, "doc");
        let op = home.store_object(NodeId(2), obj, StorePolicy::MandatoryFirst, true);
        let _ = home.run_until_complete(op);
        let op = home.fetch_object(NodeId(reader), &name);
        let _ = home.run_until_complete(op);
    }
    home.run_for(Duration::from_secs(22));
    home.run_until_idle();
    home
}

#[test]
fn health_exports_are_byte_identical_across_same_seed_chaos_runs() {
    let a = chaos_run();
    let b = chaos_run();
    assert_eq!(a.now(), b.now(), "same-seed runs diverged in virtual time");

    let (prom_a, prom_b) = (a.prometheus_text(), b.prometheus_text());
    assert!(prom_a == prom_b, "Prometheus snapshots differ between runs");
    let (series_a, series_b) = (a.series_json(), b.series_json());
    assert!(series_a == series_b, "gauge series differ between runs");
    let (pm_a, pm_b) = (a.postmortem_json(), b.postmortem_json());
    assert!(pm_a == pm_b, "post-mortem dumps differ between runs");

    // The post-mortem is non-vacuous and carries its context sections.
    for needle in [
        "\"error\":\"",
        "\"kind\":\"fetch\"",
        "\"object\":\"doomed/evidence.bin\"",
        "\"faults\":[",
        "\"gauges\":[",
        "crash",
    ] {
        assert!(pm_a.contains(needle), "post-mortem lacks {needle}: {pm_a}");
    }
    // The Prometheus snapshot exposes counters, gauges, and histograms.
    for needle in [
        "# TYPE c4h_stats_ops_completed counter",
        "# TYPE c4h_runtime_ops_inflight gauge",
        "# TYPE c4h_op_fetch_total_ns histogram",
        "c4h_health_postmortems 1",
    ] {
        assert!(prom_a.contains(needle), "Prometheus text lacks {needle}");
    }
    // The deterministic text surfaces render without panicking and agree.
    let mut a = a;
    let mut b = b;
    assert_eq!(a.health_text(), b.health_text());
    assert_eq!(a.top_text(), b.top_text());
    assert!(
        a.health_text().contains("postmortems=1"),
        "{}",
        a.health_text()
    );
}
