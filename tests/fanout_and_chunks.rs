//! Integration tests for the concurrent store data path: parallel replica
//! fan-out, quorum publishing with detached stragglers, chunked transfers,
//! and the capped fetch-retry backoff — plus the determinism guarantees
//! that must survive all of it.

use std::time::Duration;

use cloud4home::{Cloud4Home, Config, FaultEvent, FaultPlan, NodeId, Object, StorePolicy};

fn fanout_config(seed: u64) -> Config {
    let mut config = Config::paper_testbed(seed);
    config.replication = 4;
    config.tracing = true;
    config
}

/// Total object copies held across all nodes.
fn copies(home: &Cloud4Home) -> usize {
    (0..home.node_count())
        .map(|j| home.objects_on(NodeId(j)))
        .sum()
}

#[test]
fn replica_fanout_runs_in_parallel() {
    let mut home = Cloud4Home::new(fanout_config(70));
    let obj = Object::synthetic("fan/out.bin", 1, 8 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    let r = home.run_until_complete(op);
    r.expect_ok();
    assert_eq!(r.partial_replication, 0, "all peers were live");
    assert_eq!(copies(&home), 4, "primary + 3 replicas");
    assert_eq!(home.stats().replicas_written, 3);

    // The per-replica transfer sub-stages must overlap in virtual time:
    // the fan-out starts every replica flow at once, so with three flows
    // the spans cannot be disjoint.
    let snap = home.telemetry().snapshot();
    let flows: Vec<_> = snap
        .spans()
        .filter(|s| s.cat == "stage" && s.name == "store.replica_flow")
        .collect();
    assert_eq!(flows.len(), 3, "one transfer span per replica");
    for pair in flows.windows(2) {
        assert!(
            pair[0].start_ns < pair[1].end_ns && pair[1].start_ns < pair[0].end_ns,
            "replica flows must overlap: [{}, {}] vs [{}, {}]",
            pair[0].start_ns,
            pair[0].end_ns,
            pair[1].start_ns,
            pair[1].end_ns
        );
    }
    // And each flow span sits inside the single store.fanout stage span.
    let fanout = snap
        .spans()
        .find(|s| s.cat == "stage" && s.name == "store.fanout")
        .expect("fan-out stage span recorded");
    for f in &flows {
        assert!(f.start_ns >= fanout.start_ns && f.end_ns <= fanout.end_ns);
    }
}

#[test]
fn fanout_latency_stays_near_flat() {
    // The acceptance headline: with a quorum of one, replica fan-out runs
    // entirely in the background, so a rep=4 store answers within 1.5× of
    // an unreplicated one instead of paying for three extra copies on the
    // shared LAN before completing.
    let latency = |replication: usize, quorum: usize| {
        let mut config = Config::paper_testbed(71);
        config.replication = replication;
        config.replica_quorum = quorum;
        let mut home = Cloud4Home::new(config);
        let obj = Object::synthetic("flat/x.bin", 2, 4 << 20, "doc");
        let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
        let r = home.run_until_complete(op);
        r.expect_ok();
        let total = r.total();
        // Whatever completed early must still fully replicate eventually.
        home.run_until_idle();
        assert_eq!(copies(&home), replication);
        total
    };
    let base = latency(1, 0);
    let fanned = latency(4, 1);
    assert!(
        fanned <= base.mul_f64(1.5),
        "rep=4 quorum=1 store took {fanned:?}, over 1.5x the rep=1 {base:?}"
    );
}

#[test]
fn quorum_publish_detaches_stragglers_and_replicas_still_land() {
    let mut quorum = fanout_config(72);
    quorum.replica_quorum = 2;
    let mut home = Cloud4Home::new(quorum);
    let obj = Object::synthetic("quorum/big.bin", 3, 16 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    let r = home.run_until_complete(op);
    r.expect_ok();
    assert_eq!(home.stats().quorum_publishes, 1, "published at quorum");

    // The straggler replicas finish in the background and re-publish the
    // metadata with the full replica set.
    home.run_until_idle();
    assert_eq!(copies(&home), 4, "every replica lands eventually");
    assert_eq!(home.stats().replicas_written, 3);

    // Same store with quorum = all copies must not complete sooner.
    let mut home_all = Cloud4Home::new(fanout_config(72));
    let obj = Object::synthetic("quorum/big.bin", 3, 16 << 20, "doc");
    let op = home_all.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    let all = home_all.run_until_complete(op);
    all.expect_ok();
    assert_eq!(home_all.stats().quorum_publishes, 0);
    assert!(
        r.total() <= all.total(),
        "quorum publish ({:?}) must not be slower than waiting for all ({:?})",
        r.total(),
        all.total()
    );
}

#[test]
fn chunked_transfers_account_every_byte() {
    let run = |chunk_bytes: u64| {
        let mut config = Config::paper_testbed(73);
        config.chunk_bytes = chunk_bytes;
        config.chunk_window = 4;
        config.tracing = true;
        let mut home = Cloud4Home::new(config);
        let obj = Object::synthetic("chunk/video.avi", 4, 4 << 20, "avi");
        let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
        assert_eq!(home.run_until_complete(op).expect_ok().bytes, 4 << 20);
        let op = home.fetch_object(NodeId(2), "chunk/video.avi");
        let fetched = home.run_until_complete(op);
        assert_eq!(fetched.expect_ok().bytes, 4 << 20);
        home
    };

    let chunked = run(256 << 10);
    assert!(
        chunked.stats().chunked_transfers >= 1,
        "transfers above the threshold must chunk: {:?}",
        chunked.stats()
    );
    // The transfer facade reports the whole object on one flow span, with
    // the pipelined chunk count alongside.
    let snap = chunked.telemetry().snapshot();
    let split = snap
        .spans()
        .find(|s| s.name == "net.flow" && s.arg("chunks").is_some())
        .expect("a chunked net.flow span");
    assert_eq!(split.arg("bytes").and_then(|v| v.as_u64()), Some(4 << 20));
    assert_eq!(
        split.arg("chunks").and_then(|v| v.as_u64()),
        Some((4u64 << 20).div_ceil(256 << 10))
    );

    // Chunking must never change how many bytes the application sees.
    let plain = run(0);
    assert_eq!(plain.stats().chunked_transfers, 0);
    assert_eq!(copies(&plain), copies(&chunked));
}

#[test]
fn replica_crash_mid_fanout_degrades_gracefully() {
    let run = || {
        let mut config = Config::paper_testbed(74);
        config.replication = 3;
        let mut home = Cloud4Home::new(config);
        // 20 MiB keeps the replica flows in flight well past the crash.
        let obj = Object::synthetic("chaos/big.bin", 5, 20 << 20, "doc");
        let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
        // Advance until the fan-out's replica flows are actually on the
        // wire (the first flows this run starts), then kill a target.
        while home.stats().flows_started == 0 {
            home.run_for(Duration::from_millis(50));
        }
        // The desktop (largest voluntary bin) is always a replica target.
        home.crash_node(NodeId(5));
        let r = home.run_until_complete(op);
        (r, format!("{:?}", home.stats()))
    };

    let (r, stats) = run();
    r.expect_ok();
    assert!(r.failovers >= 1, "the severed replica flow is a failover");
    assert!(
        r.partial_replication >= 1,
        "the lost copy must be reported: {r:?}"
    );
    assert!(stats.contains("partial_replication: 1"), "stats: {stats}");

    // The same seed must deal the same crash outcome, byte for byte.
    let (r2, stats2) = run();
    assert_eq!(format!("{r:?}"), format!("{r2:?}"), "reports diverged");
    assert_eq!(stats, stats2, "stats diverged");
}

#[test]
fn store_records_partial_replication_when_peers_are_scarce() {
    let mut config = Config::paper_testbed(75);
    config.replication = 5;
    let mut home = Cloud4Home::new(config);
    // Four live nodes remain: a primary plus three peers for the four
    // requested replica copies.
    home.crash_node(NodeId(3));
    home.crash_node(NodeId(4));
    home.run_for(Duration::from_secs(12));

    let obj = Object::synthetic("scarce/x.bin", 6, 1 << 20, "doc");
    let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
    let r = home.run_until_complete(op);
    r.expect_ok();
    assert_eq!(
        r.partial_replication, 1,
        "5-way replication with 4 live nodes is short one copy: {r:?}"
    );
    assert_eq!(home.stats().partial_replication, 1);
}

#[test]
fn fetch_backoff_is_capped_under_long_partitions() {
    // Cut both holders off for 20 s. Uncapped exponential backoff would
    // keep doubling (…6.4 s, 12.8 s, 25.6 s) and could sleep far past the
    // heal; the 5 s cap bounds the post-heal delay to one jittered round.
    let mut config = Config::paper_testbed(76);
    config.replication = 2;
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("cap/big.bin", 7, 20 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    assert_eq!(home.objects_on(NodeId(5)), 1, "replica on the desktop");

    let op = home.fetch_object(NodeId(0), "cap/big.bin");
    home.run_for(Duration::from_millis(500));
    home.apply_fault(FaultEvent::Partition(vec![vec![NodeId(1), NodeId(5)]]));
    home.inject_faults(FaultPlan::new().at(Duration::from_secs(20), FaultEvent::Heal));
    let r = home.run_until_complete(op);
    assert!(
        r.outcome.is_ok(),
        "fetch must outlast the cut: {:?}",
        r.outcome
    );
    assert!(
        r.total() > Duration::from_secs(20),
        "completed after the heal"
    );
    assert!(
        r.total() < Duration::from_secs(30),
        "capped backoff retries promptly after the heal, took {:?}",
        r.total()
    );
}

/// Two same-seed runs of a scenario exercising every new mechanism at once
/// — parallel fan-out, quorum publish, chunked transfers, and a mid-fan-out
/// crash — must export byte-identical traces and metrics.
#[test]
fn concurrent_data_path_is_byte_deterministic() {
    let run = || {
        let mut config = fanout_config(77);
        config.replica_quorum = 2;
        config.chunk_bytes = 512 << 10;
        let mut home = Cloud4Home::new(config);
        let mut ops = Vec::new();
        for i in 0..6u64 {
            let obj = Object::synthetic(&format!("det/{i}.bin"), i, (1 + i) << 20, "doc");
            ops.push(home.store_object(
                NodeId((i % 6) as usize),
                obj,
                StorePolicy::ForceHome,
                true,
            ));
        }
        home.run_for(Duration::from_millis(200));
        home.crash_node(NodeId(4));
        home.run_until_idle();
        for op in ops {
            home.take_report(op).expect("every store resolves");
        }
        for i in 0..6u64 {
            let op = home.fetch_object(NodeId((i as usize + 1) % 4), &format!("det/{i}.bin"));
            let _ = home.run_until_complete(op);
        }
        home
    };
    let a = run();
    let b = run();
    assert_eq!(a.now(), b.now(), "virtual clocks diverged");
    assert!(
        a.chrome_trace_json() == b.chrome_trace_json(),
        "Chrome traces differ between same-seed runs"
    );
    assert!(
        a.metrics_json() == b.metrics_json(),
        "metrics dumps differ between same-seed runs"
    );
}
