//! Trace-based invariant tests for the telemetry layer.
//!
//! The chaos scenario from the robustness PR (eDonkey trace replay under a
//! seeded crash + partition + bursty-loss fault plan) is replayed with
//! tracing enabled, and the recorded spans and instants are then checked
//! against system-level invariants that must hold for *every* operation:
//! failed fetch attempts are always followed by a failover, no transfer
//! span crosses an active partition, and the whole trace — Chrome export
//! and metrics dump included — is byte-identical across same-seed runs.

use std::collections::BTreeSet;
use std::time::Duration;

use c4h_workloads::{generate, OpKind, TraceConfig};
use cloud4home::{
    Cloud4Home, Config, FaultEvent, FaultPlan, InstantRec, NodeId, Object, RoutePolicy,
    ServiceKind, Snapshot, SpanRec, StorePolicy,
};

/// Runtime instants (fault injections, churn) render on track 0.
const RUNTIME_TRACK: u64 = 0;

/// Replays the acceptance chaos scenario with tracing enabled, then (after
/// the heal) runs one store + process pair so the trace also contains a
/// service-execution operation. Returns the deployment for inspection.
fn chaos_traced() -> Cloud4Home {
    let mut config = Config::paper_testbed(53);
    config.replication = 2;
    config.tracing = true;
    let mut home = Cloud4Home::new(config);
    home.inject_faults(
        FaultPlan::new()
            .at(
                Duration::ZERO,
                FaultEvent::BurstyLoss {
                    mean_loss: 0.10,
                    mean_burst_len: 8.0,
                },
            )
            .at(Duration::from_secs(5), FaultEvent::Crash(NodeId(4)))
            .at(
                Duration::from_secs(8),
                FaultEvent::Partition(vec![vec![NodeId(2)]]),
            )
            .at(Duration::from_secs(38), FaultEvent::Heal),
    );

    let mut trace_cfg = TraceConfig::paper_default(60);
    trace_cfg.files = 40;
    trace_cfg.size_override = Some((256 << 10, 1 << 20));
    let trace = generate(&trace_cfg, 9);

    const CLIENTS: [usize; 4] = [0, 1, 3, 5];
    for top in &trace.ops {
        let client = NodeId(CLIENTS[top.client % CLIENTS.len()]);
        let file = &trace.files[top.file];
        let op = match top.op {
            OpKind::Store => {
                let obj = Object::synthetic(
                    &file.name,
                    file.content_seed,
                    file.size_bytes,
                    file.kind.content_type(),
                );
                home.store_object(client, obj, StorePolicy::MandatoryFirst, true)
            }
            OpKind::Fetch => home.fetch_object(client, &file.name),
        };
        // Under chaos some operations legitimately fail; the invariants
        // below must hold either way.
        let _ = home.run_until_complete(op);
    }

    // Post-heal: a processing operation so the trace covers service
    // execution alongside stores and fetches. The bursty-loss model stays
    // active for the whole run, so individual attempts may still fail —
    // retry with fresh names until one completes (deterministically).
    let mut processed = false;
    for i in 0..8u64 {
        let name = format!("post/heal-{i}.jpg");
        let obj = Object::synthetic(&name, 77 + i, 512 << 10, "jpeg");
        let op = home.store_object(NodeId(0), obj, StorePolicy::ForceHome, true);
        if home.run_until_complete(op).outcome.is_err() {
            continue;
        }
        let op = home.process_object(
            NodeId(0),
            &name,
            ServiceKind::FaceDetect,
            RoutePolicy::Performance,
        );
        if home.run_until_complete(op).outcome.is_ok() {
            processed = true;
            break;
        }
    }
    assert!(processed, "no post-heal process operation completed");
    home
}

/// The single operation span recorded on an op's track, if any.
fn op_span_on_track(snap: &Snapshot, track: u64) -> Option<&SpanRec> {
    snap.spans().find(|s| s.cat == "op" && s.track == track)
}

#[test]
fn chaos_trace_covers_all_span_kinds() {
    let home = chaos_traced();
    let snap = home.telemetry().snapshot();

    for kind in ["store", "fetch", "process"] {
        assert!(
            snap.spans().any(|s| s.cat == "op" && s.name == kind),
            "trace must contain an `{kind}` operation span"
        );
    }
    for cat in ["stage", "dht", "net"] {
        assert!(
            snap.spans().any(|s| s.cat == cat),
            "trace must contain `{cat}` spans"
        );
    }
    assert!(
        snap.instants().any(|i| i.name == "fault.crash"),
        "the injected crash must leave an instant"
    );

    // Every stage span nests inside the single op span on its track: the
    // Chrome export relies on timestamp containment for nesting.
    for stage in snap.spans().filter(|s| s.cat == "stage") {
        let op = op_span_on_track(&snap, stage.track)
            .unwrap_or_else(|| panic!("stage span {} has no op span", stage.name));
        assert!(
            stage.start_ns >= op.start_ns && stage.end_ns <= op.end_ns,
            "stage {} [{}, {}] escapes its op span [{}, {}]",
            stage.name,
            stage.start_ns,
            stage.end_ns,
            op.start_ns,
            op.end_ns
        );
    }
}

/// Checks the failover invariant over a snapshot and returns how many
/// failed fetch attempts it covered: every mid-transfer fetch failure must
/// be followed, on the same operation's track, by a failover attempt
/// (which may itself conclude that no candidate is left and fail the
/// operation — but the attempt must be there). And a fetch span that
/// reports failovers in its arguments must show the instants inside it.
fn assert_failed_fetches_failover(snap: &Snapshot) -> usize {
    let mut checked = 0;
    for failure in snap.instants().filter(|i| {
        i.name == "op.transfer_failed"
            && i.arg("stage")
                .and_then(|v| v.as_str())
                .is_some_and(|s| s.starts_with("fetch."))
    }) {
        checked += 1;
        assert!(
            snap.instants().any(|i| i.name == "fetch.failover"
                && i.track == failure.track
                && i.ts_ns >= failure.ts_ns),
            "fetch transfer failure at {} ns (track {}) has no failover",
            failure.ts_ns,
            failure.track
        );
    }
    for op in snap
        .spans()
        .filter(|s| s.cat == "op" && s.name == "fetch")
        .filter(|s| s.arg("failovers").and_then(|v| v.as_u64()).unwrap_or(0) > 0)
    {
        assert!(
            snap.instants().any(|i| i.name == "fetch.failover"
                && i.track == op.track
                && i.ts_ns >= op.start_ns
                && i.ts_ns <= op.end_ns),
            "fetch on track {} claims failovers but records none",
            op.track
        );
    }
    checked
}

#[test]
fn failed_fetch_attempts_are_followed_by_failover() {
    // Universally over the chaos trace (whatever failures the seed deals)…
    let home = chaos_traced();
    assert_failed_fetches_failover(&home.telemetry().snapshot());

    // …and non-vacuously on a scenario guaranteed to sever a fetch
    // mid-transfer: a partition cuts both holders off while 20 MiB are in
    // flight, and the fetch must fail over, back off, and outlast the cut.
    let mut config = Config::paper_testbed(51);
    config.replication = 2;
    config.tracing = true;
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("part/big.bin", 4, 20 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    let op = home.fetch_object(NodeId(0), "part/big.bin");
    home.run_for(Duration::from_millis(500));
    home.apply_fault(FaultEvent::Partition(vec![vec![NodeId(1), NodeId(5)]]));
    home.inject_faults(FaultPlan::new().at(Duration::from_secs(8), FaultEvent::Heal));
    home.run_until_complete(op).expect_ok();

    let covered = assert_failed_fetches_failover(&home.telemetry().snapshot());
    assert!(
        covered > 0,
        "the severed transfer must leave a failure instant"
    );
}

/// Partition groups as recorded in the `fault.partition` instant: explicit
/// groups split by `|`, member addresses by `,`; every unlisted address
/// belongs to the implicit remainder group.
fn parse_groups(instant: &InstantRec) -> Vec<BTreeSet<u64>> {
    let desc = instant
        .arg("groups")
        .and_then(|v| v.as_str())
        .expect("fault.partition records its groups");
    desc.split('|')
        .map(|g| g.split(',').map(|a| a.parse().expect("addr")).collect())
        .collect()
}

fn group_of(groups: &[BTreeSet<u64>], addr: u64) -> usize {
    groups
        .iter()
        .position(|g| g.contains(&addr))
        .unwrap_or(groups.len())
}

#[test]
fn no_transfer_crosses_an_active_partition() {
    let home = chaos_traced();
    let snap = home.telemetry().snapshot();

    // Reconstruct partition windows [cut, heal) from the fault instants.
    let mut windows: Vec<(u64, u64, Vec<BTreeSet<u64>>)> = Vec::new();
    for i in snap.instants().filter(|i| i.track == RUNTIME_TRACK) {
        match &*i.name {
            "fault.partition" => windows.push((i.ts_ns, u64::MAX, parse_groups(i))),
            "fault.heal" => {
                if let Some(w) = windows.last_mut() {
                    w.1 = i.ts_ns;
                }
            }
            _ => {}
        }
    }
    assert!(!windows.is_empty(), "chaos plan must cut a partition");

    // No transfer between nodes in different groups may overlap an active
    // window: flows in flight when the cut lands are severed at the cut
    // instant, and no crossing flow may start before the heal.
    for flow in snap.spans().filter(|s| s.name == "net.flow") {
        let src = flow.arg("src").and_then(|v| v.as_u64()).expect("src");
        let dst = flow.arg("dst").and_then(|v| v.as_u64()).expect("dst");
        for (cut, heal, groups) in &windows {
            if group_of(groups, src) == group_of(groups, dst) {
                continue;
            }
            assert!(
                flow.end_ns <= *cut || flow.start_ns >= *heal,
                "flow {src}->{dst} [{}, {}] crosses the partition [{cut}, {heal})",
                flow.start_ns,
                flow.end_ns
            );
        }
    }
}

#[test]
fn owner_crash_failover_is_visible_in_the_trace() {
    let mut config = Config::paper_testbed(41);
    config.replication = 2;
    config.tracing = true;
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("depart/data.bin", 1, 512 << 10, "doc");
    let op = home.store_object(NodeId(3), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();

    home.crash_node(NodeId(3));
    home.run_for(Duration::from_secs(8));
    let op = home.fetch_object(NodeId(1), "depart/data.bin");
    home.run_until_complete(op).expect_ok();

    let snap = home.telemetry().snapshot();
    let fetch = snap
        .spans()
        .find(|s| s.cat == "op" && s.name == "fetch")
        .expect("fetch span recorded");
    assert_eq!(fetch.arg("ok").and_then(|v| v.as_u64()), Some(1));
    assert!(
        fetch.arg("failovers").and_then(|v| v.as_u64()).unwrap_or(0) >= 1,
        "fetch must report the failover in its span arguments"
    );
    assert!(
        snap.instants().any(|i| i.name == "fetch.failover"
            && i.track == fetch.track
            && i.ts_ns >= fetch.start_ns
            && i.ts_ns <= fetch.end_ns),
        "the failover instant must nest inside the fetch span"
    );
    assert!(
        snap.instants().any(|i| i.name == "fault.crash"),
        "the crash must be on the runtime track"
    );
}

#[test]
fn chrome_trace_and_metrics_are_byte_deterministic() {
    let a = chaos_traced();
    let b = chaos_traced();
    assert_eq!(a.now(), b.now(), "same-seed runs diverged in virtual time");

    let (trace_a, trace_b) = (a.chrome_trace_json(), b.chrome_trace_json());
    assert!(trace_a == trace_b, "Chrome traces differ between runs");
    let (metrics_a, metrics_b) = (a.metrics_json(), b.metrics_json());
    assert!(metrics_a == metrics_b, "metrics dumps differ between runs");

    // Smoke-check the export shape: a Chrome trace with process metadata,
    // complete events for the main span kinds, and instant events.
    for needle in [
        "\"traceEvents\"",
        "\"ph\":\"X\"",
        "\"ph\":\"i\"",
        "\"ph\":\"M\"",
        "\"name\":\"store\"",
        "\"name\":\"fetch\"",
        "\"name\":\"process\"",
        "\"name\":\"net.flow\"",
        "\"cat\":\"dht\"",
    ] {
        assert!(trace_a.contains(needle), "trace export lacks {needle}");
    }
    for needle in ["op.store.ok", "stats.ops_completed", "chimera.lookup_hops"] {
        assert!(metrics_a.contains(needle), "metrics dump lacks {needle}");
    }
}
