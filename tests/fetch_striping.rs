//! Integration tests for the striped multi-source fetch data path:
//! concurrent stripes pulled from several holders, bandwidth-ranked
//! candidate order, hedged tail requests, parallel cloud range reads,
//! mid-stripe holder loss — and the byte accounting and determinism
//! guarantees that must survive all of it.

use std::time::Duration;

use cloud4home::{Cloud4Home, Config, NodeId, Object, StorePolicy};

fn striped_config(seed: u64, sources: usize) -> Config {
    let mut config = Config::paper_testbed(seed);
    config.replication = 3;
    config.fetch_sources = sources;
    config.fetch_hedge = 0.0;
    config.tracing = true;
    config
}

/// A node holding no copy of anything — a clean fetch client, so the
/// striping path is never short-circuited by a local disk read.
fn non_holder(home: &Cloud4Home) -> NodeId {
    (0..home.node_count())
        .map(NodeId)
        .find(|&id| home.objects_on(id) == 0)
        .expect("some node holds no copy")
}

/// The winning stripe spans as `(offset, bytes, src, start_ns, end_ns)`,
/// sorted by offset.
fn won_stripes(home: &Cloud4Home) -> Vec<(u64, u64, String, u64, u64)> {
    let snap = home.telemetry().snapshot();
    let mut out: Vec<_> = snap
        .spans()
        .filter(|s| s.cat == "stripe" && s.name == "fetch.stripe")
        .filter(|s| s.arg("won").and_then(|v| v.as_bool()) == Some(true))
        .map(|s| {
            (
                s.arg("offset").and_then(|v| v.as_u64()).expect("offset"),
                s.arg("bytes").and_then(|v| v.as_u64()).expect("bytes"),
                s.arg("src")
                    .and_then(|v| v.as_str())
                    .expect("src")
                    .to_owned(),
                s.start_ns,
                s.end_ns,
            )
        })
        .collect();
    out.sort();
    out
}

/// Asserts the winning stripes tile `[0, size)` exactly: contiguous
/// offsets, no overlap, no gap, no byte delivered twice.
fn assert_exact_coverage(stripes: &[(u64, u64, String, u64, u64)], size: u64) {
    let mut next = 0;
    for (offset, bytes, _, _, _) in stripes {
        assert_eq!(*offset, next, "stripes must tile the object: {stripes:?}");
        next += bytes;
    }
    assert_eq!(next, size, "stripes must cover every byte: {stripes:?}");
}

#[test]
fn striped_fetch_pulls_stripes_concurrently_and_accounts_every_byte() {
    let mut home = Cloud4Home::new(striped_config(80, 3));
    let size = 24 << 20;
    let obj = Object::synthetic("stripe/big.avi", 1, size, "avi");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    home.run_until_idle();

    let client = non_holder(&home);
    let op = home.fetch_object(client, "stripe/big.avi");
    let r = home.run_until_complete(op);
    assert_eq!(r.expect_ok().bytes, size);
    assert_eq!(home.stats().striped_fetches, 1);
    assert_eq!(home.stats().hedged_fetches, 0, "hedging disabled");

    // One winning span per stripe, each from a different holder, jointly
    // covering the object exactly once.
    let stripes = won_stripes(&home);
    assert_eq!(stripes.len(), 3, "one span per stripe: {stripes:?}");
    assert_exact_coverage(&stripes, size);
    let mut srcs: Vec<&str> = stripes.iter().map(|s| s.2.as_str()).collect();
    srcs.dedup();
    assert_eq!(srcs.len(), 3, "each stripe has its own source: {srcs:?}");

    // The concurrency proof: all three transfers overlap in virtual time.
    for pair in stripes.windows(2) {
        assert!(
            pair[0].3 < pair[1].4 && pair[1].3 < pair[0].4,
            "stripes must overlap: {stripes:?}"
        );
    }

    // A single-source fetch of the same object moves the same bytes.
    let mut single = Cloud4Home::new(striped_config(80, 1));
    let obj = Object::synthetic("stripe/big.avi", 1, size, "avi");
    let op = single.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    single.run_until_complete(op).expect_ok();
    single.run_until_idle();
    let op = single.fetch_object(client, "stripe/big.avi");
    assert_eq!(single.run_until_complete(op).expect_ok().bytes, size);
    assert_eq!(single.stats().striped_fetches, 0);
}

#[test]
fn cloud_striping_fills_the_wan_pipe() {
    // The WAN downlink fits ~3.7 per-flow TCP streams, so three parallel
    // range reads of the same S3 object finish close to 3× sooner than
    // one monolithic flow — the acceptance headline for striped fetches.
    let fetch_secs = |sources: usize| {
        let mut config = Config::paper_testbed(81);
        config.fetch_sources = sources;
        let mut home = Cloud4Home::new(config);
        let obj = Object::synthetic("wan/archive.zip", 2, 4 << 20, "doc");
        let op = home.store_object(NodeId(1), obj, StorePolicy::ForceCloud, true);
        home.run_until_complete(op).expect_ok();
        let op = home.fetch_object(NodeId(2), "wan/archive.zip");
        let r = home.run_until_complete(op);
        let out = r.expect_ok();
        assert_eq!(out.bytes, 4 << 20);
        assert!(out.via_cloud, "the object lives in the cloud");
        assert_eq!(
            home.stats().striped_fetches,
            u64::from(sources > 1),
            "cloud fetches stripe exactly when sources allow"
        );
        r.total()
    };
    let single = fetch_secs(1);
    let striped = fetch_secs(3);
    assert!(
        striped.as_secs_f64() < single.as_secs_f64() * 0.55,
        "3 range reads took {striped:?}, expected well under half of {single:?}"
    );
}

#[test]
fn hedged_stripe_races_without_duplicating_bytes() {
    // Two stripes across two of the three holders leave the third idle;
    // an aggressive hedging threshold re-issues the tail stripe there as
    // soon as the first stripe lands, and the copies race.
    let mut config = striped_config(82, 2);
    config.fetch_hedge = 0.01;
    let mut home = Cloud4Home::new(config);
    let size = 48 << 20;
    let obj = Object::synthetic("hedge/big.avi", 3, size, "avi");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    home.run_until_idle();

    let client = non_holder(&home);
    let op = home.fetch_object(client, "hedge/big.avi");
    let r = home.run_until_complete(op);
    assert_eq!(r.expect_ok().bytes, size);
    assert_eq!(home.stats().striped_fetches, 1);
    assert!(
        home.stats().hedged_fetches >= 1,
        "the tail stripe must hedge: {:?}",
        home.stats()
    );
    let snap = home.telemetry().snapshot();
    assert!(
        snap.instants().any(|i| i.name == "fetch.hedge"),
        "hedges leave an instant in the trace"
    );

    // Whoever won each race, the winning spans still tile the object
    // exactly — the losing copy is cancelled, never delivered twice.
    let stripes = won_stripes(&home);
    assert_eq!(stripes.len(), 2, "one winner per stripe: {stripes:?}");
    assert_exact_coverage(&stripes, size);
}

#[test]
fn mid_stripe_holder_crash_reassigns_only_that_stripe() {
    let mut home = Cloud4Home::new(striped_config(83, 3));
    let size = 24 << 20;
    let obj = Object::synthetic("crash/big.avi", 4, size, "avi");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    home.run_until_idle();
    assert_eq!(home.objects_on(NodeId(5)), 1, "replica on the desktop");

    let client = non_holder(&home);
    let before = home.stats().flows_started;
    let op = home.fetch_object(client, "crash/big.avi");
    // Advance until all three stripe transfers are on the wire, then kill
    // one of the serving holders.
    while home.stats().flows_started < before + 3 {
        home.run_for(Duration::from_millis(20));
    }
    home.crash_node(NodeId(5));
    let r = home.run_until_complete(op);
    assert_eq!(r.expect_ok().bytes, size, "fetch survives the crash");
    assert!(r.failovers >= 1, "the lost stripe is a failover: {r:?}");

    let snap = home.telemetry().snapshot();
    assert!(
        snap.instants().any(|i| i.name == "fetch.stripe_reassign"),
        "the reassignment must be visible in the trace"
    );
    // The severed transfer leaves a lost span; the winners still cover
    // the object exactly despite the mid-flight source change.
    assert!(
        snap.spans()
            .any(|s| s.name == "fetch.stripe"
                && s.arg("won").and_then(|v| v.as_bool()) == Some(false)),
        "the severed stripe leaves a lost span"
    );
    assert_exact_coverage(&won_stripes(&home), size);
}

#[test]
fn ranking_demotes_dead_primary_even_for_single_source_fetches() {
    // fetch_sources = 1: no striping, but candidates are still ranked, so
    // a fetch never wastes a round on a holder known to be dead — and the
    // redirect is still counted and traced as a failover.
    let mut config = Config::paper_testbed(84);
    config.replication = 2;
    config.tracing = true;
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("rank/doc.pdf", 5, 2 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    home.run_until_idle();

    home.crash_node(NodeId(1)); // the primary
    let client = non_holder(&home);
    let op = home.fetch_object(client, "rank/doc.pdf");
    let r = home.run_until_complete(op);
    assert_eq!(r.expect_ok().bytes, 2 << 20);
    assert!(r.failovers >= 1, "skipping the dead primary counts: {r:?}");

    let snap = home.telemetry().snapshot();
    let order = snap
        .instants()
        .filter(|i| i.name == "fetch.rank")
        .filter_map(|i| i.arg("order").and_then(|v| v.as_str()))
        .last()
        .expect("ranked fetches leave a fetch.rank instant")
        .to_owned();
    assert!(
        !order.starts_with("netbook-1"),
        "the dead primary must not rank first: {order}"
    );
    assert!(
        snap.instants().any(|i| i.name == "fetch.failover"
            && i.arg("skipped").and_then(|v| v.as_str()) == Some("netbook-1")),
        "the demoted primary is traced as the skipped holder"
    );
}

/// Two same-seed runs of a scenario exercising striping, hedging, chunked
/// stripe transfers, and a mid-fetch crash must export byte-identical
/// traces and metrics.
#[test]
fn striped_fetches_are_byte_deterministic() {
    let run = || {
        let mut config = striped_config(85, 3);
        config.fetch_hedge = 0.01;
        config.chunk_bytes = 512 << 10;
        let mut home = Cloud4Home::new(config);
        for i in 0..4u64 {
            let obj = Object::synthetic(&format!("det/{i}.bin"), i, (4 + i) << 20, "doc");
            let op = home.store_object(NodeId((i % 3) as usize), obj, StorePolicy::ForceHome, true);
            home.run_until_complete(op).expect_ok();
        }
        home.run_until_idle();
        let mut ops = Vec::new();
        for i in 0..4u64 {
            ops.push(home.fetch_object(NodeId(4), &format!("det/{i}.bin")));
        }
        home.run_for(Duration::from_millis(400));
        home.crash_node(NodeId(5));
        home.run_until_idle();
        for op in ops {
            let _ = home.take_report(op).expect("every fetch resolves");
        }
        home
    };
    let a = run();
    let b = run();
    assert_eq!(a.now(), b.now(), "virtual clocks diverged");
    assert!(
        a.chrome_trace_json() == b.chrome_trace_json(),
        "Chrome traces differ between same-seed runs"
    );
    assert!(
        a.metrics_json() == b.metrics_json(),
        "metrics dumps differ between same-seed runs"
    );
}
