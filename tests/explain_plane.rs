//! Acceptance tests for the causal op ledger and explain plane: the
//! exact-sum invariant of critical-path DAGs under chaos (crash mid-fetch,
//! hedge races, open breakers), byte determinism with the ledger disabled
//! and enabled, and the bounded per-op ring's chain-preserving eviction.

use std::fmt::Write as _;
use std::time::Duration;

use cloud4home::{Cloud4Home, Config, NodeId, Object, OpReport, StorePolicy, LEDGER_NONE};

const OBJ_BYTES: u64 = 256 << 10;

/// Testbed with the causal ledger recording (tracing stays off: the two
/// planes are independent and `explain` must work without the recorder).
fn ledger_config(seed: u64) -> Config {
    let mut config = Config::paper_testbed(seed);
    config.ledger = true;
    config
}

/// Asserts the exact-sum invariant on one completed report: the DAG's
/// edges are adjacent, tile `[submitted, completed]` with no gap or
/// overlap, sum to the op latency to the nanosecond, and account for
/// every recorded ledger event exactly once.
fn assert_exact_sum(report: &OpReport) {
    let dag = report.critical_dag();
    assert!(
        !dag.is_empty(),
        "{}: a ledger-enabled op must yield a critical-path DAG",
        report.id
    );
    let first = dag.first().expect("non-empty");
    let last = dag.last().expect("non-empty");
    assert_eq!(
        first.start_ns,
        report.submitted.as_nanos(),
        "{}: the DAG must start at submission",
        report.id
    );
    assert_eq!(
        last.end_ns,
        report.completed.as_nanos(),
        "{}: the DAG must end at completion",
        report.id
    );
    for pair in dag.windows(2) {
        assert_eq!(
            pair[0].end_ns, pair[1].start_ns,
            "{}: DAG edges must be adjacent (no gap, no overlap)",
            report.id
        );
    }
    let summed: u64 = dag.iter().map(|e| e.end_ns - e.start_ns).sum();
    let latency = report.total().as_nanos() as u64;
    assert_eq!(
        summed, latency,
        "{}: DAG path length must equal op latency exactly",
        report.id
    );
    let attached: usize = dag.iter().map(|e| e.causes.len()).sum();
    assert_eq!(
        attached,
        report.ledger.len(),
        "{}: every ledger event must land on exactly one edge",
        report.id
    );
}

/// Every retained event's cause link must resolve inside the same report:
/// eviction may drop events, but never a link out from under a survivor.
fn assert_chain_closed(report: &OpReport) {
    let seqs: Vec<u32> = report.ledger.iter().map(|e| e.seq).collect();
    for e in &report.ledger {
        assert!(
            e.cause == LEDGER_NONE || seqs.contains(&e.cause),
            "{}: event #{} ({}) points at evicted cause #{}",
            report.id,
            e.seq,
            e.kind,
            e.cause
        );
    }
}

#[test]
fn exact_sum_survives_crash_mid_fetch_and_open_breaker() {
    let mut config = ledger_config(999);
    config.overload.enabled = true;
    config.overload.breaker_failures = 2;
    config.overload.breaker_cooldown_ms = 10_000;
    let mut home = Cloud4Home::new(config);

    let obj = Object::synthetic("chaos/payload.bin", 5, OBJ_BYTES, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    let stored = home.run_until_complete(op);
    stored.expect_ok();
    assert_exact_sum(&stored);

    // Three concurrent fetches are mid-transfer when the holder crashes:
    // each severed path records transfer.failed and the retry/backoff
    // chain that follows, and the failures trip the path breaker.
    let pending: Vec<_> = [2usize, 3, 4]
        .iter()
        .map(|&c| home.fetch_object(NodeId(c), "chaos/payload.bin"))
        .collect();
    home.run_for(Duration::from_millis(80));
    home.crash_node(NodeId(1));
    let reports: Vec<OpReport> = pending
        .into_iter()
        .map(|id| home.run_until_complete(id))
        .collect();
    let failed = reports.iter().filter(|r| r.outcome.is_err()).count();
    assert!(
        failed >= 2,
        "crash mid-flow must fail the in-flight fetches"
    );
    for r in &reports {
        assert_exact_sum(r);
        assert_chain_closed(r);
    }
    let severed = reports
        .iter()
        .flat_map(|r| &r.ledger)
        .filter(|e| e.kind == "transfer.failed")
        .count();
    assert!(
        severed >= 2,
        "severed transfers must appear in the failed ops' ledgers"
    );
    assert!(home.stats().breaker_trips >= 1, "the breaker must trip");
    assert!(
        home.background_ledger()
            .iter()
            .any(|e| e.kind.label() == "breaker.trip"),
        "breaker trips belong to the background ring"
    );

    // The holder rejoins inside the cooldown: the open breaker fast-fails
    // the next fetch, and the skip is recorded on that op's own ring.
    home.rejoin_node(NodeId(1)).expect("a live seed exists");
    let op = home.fetch_object(NodeId(2), "chaos/payload.bin");
    let report = home.run_until_complete(op);
    assert!(report.outcome.is_err(), "open breaker must fast-fail");
    assert_exact_sum(&report);
    assert!(
        report.ledger.iter().any(|e| e.kind == "breaker.skip"),
        "the fast-failed op must carry its breaker.skip decision: {:?}",
        report.ledger
    );

    // The rendered explanation restates the invariant with real numbers.
    let text = home.explain_text(report.id);
    assert!(text.contains("exact-sum"), "{text}");
    assert!(text.contains("(ok)"), "{text}");
    assert!(!text.contains("VIOLATED"), "{text}");
}

#[test]
fn exact_sum_survives_hedge_race() {
    let mut config = ledger_config(9200);
    config.replication = 3;
    config.fetch_sources = 2;
    config.fetch_hedge = 0.01;
    let mut home = Cloud4Home::new(config);
    let obj = Object::synthetic("chaos/hedge.bin", 1, 48 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    home.run_until_idle();

    let client = (0..home.node_count())
        .map(NodeId)
        .find(|&id| home.objects_on(id) == 0)
        .expect("a non-holding client");
    let op = home.fetch_object(client, "chaos/hedge.bin");
    let report = home.run_until_complete(op);
    report.expect_ok();
    assert!(home.stats().hedged_fetches >= 1, "the hedge must fire");
    assert_exact_sum(&report);
    assert_chain_closed(&report);
    let launch = report
        .ledger
        .iter()
        .find(|e| e.kind == "hedge.launch")
        .unwrap_or_else(|| {
            panic!(
                "the raced stripe must record its launch: {:?}",
                report.ledger
            )
        });
    let cancel = report
        .ledger
        .iter()
        .find(|e| e.kind == "hedge.cancel")
        .unwrap_or_else(|| {
            panic!(
                "the losing copy must record its cancel: {:?}",
                report.ledger
            )
        });
    assert_eq!(
        cancel.cause, launch.seq,
        "the cancel must chain back to the launch that raced it"
    );
    let json = home.explain_json(report.id).expect("report is retained");
    assert!(json.contains("\"edges\":["), "{json}");
    assert!(json.contains("hedge.launch"), "{json}");
}

/// The scripted workload the determinism tests replay: stores, fetches,
/// and a delete from rotating clients, then drain to idle.
fn drive(home: &mut Cloud4Home) -> String {
    let mut transcript = String::new();
    let names: Vec<String> = (0..4).map(|i| format!("det/obj-{i}.bin")).collect();
    for (i, name) in names.iter().enumerate() {
        let obj = Object::synthetic(name, 300 + i as u64, (64 + 32 * i as u64) << 10, "doc");
        let op = home.store_object(NodeId(i % 4), obj, StorePolicy::MandatoryFirst, true);
        let r = home.run_until_complete(op);
        let _ = writeln!(transcript, "store {name} -> {:?}", r.outcome);
    }
    for (i, name) in names.iter().enumerate() {
        let op = home.fetch_object(NodeId((i + 2) % 4), name);
        let r = home.run_until_complete(op);
        let _ = writeln!(transcript, "fetch {name} -> {:?}", r.outcome);
    }
    let op = home.delete_object(NodeId(0), &names[3]);
    let r = home.run_until_complete(op);
    let _ = writeln!(transcript, "delete -> {:?}", r.outcome);
    home.run_until_idle();
    let _ = writeln!(transcript, "now_ns={}", home.now().as_nanos());
    transcript
}

#[test]
fn ledger_disabled_runs_stay_byte_identical() {
    // Tracing on, ledger at its default (off): the golden-corpus posture.
    let mut config = Config::paper_testbed(31);
    config.tracing = true;

    let mut a = Cloud4Home::new(config.clone());
    let ta = drive(&mut a);
    let mut b = Cloud4Home::new(config.clone());
    let tb = drive(&mut b);
    assert_eq!(ta, tb, "ledger-off runs must replay byte-identically");
    assert_eq!(a.metrics_json(), b.metrics_json());
    assert_eq!(a.prometheus_text(), b.prometheus_text());

    // None of the ledger-gated surfaces may leak into a default run.
    assert!(!a.ledger_enabled());
    let prom = a.prometheus_text();
    assert!(
        !prom.contains("engine_wheel") && !prom.contains("engine_ledger"),
        "engine introspection gauges must stay dark with the ledger off"
    );
    assert!(
        !a.metrics_json().contains("adaptive.action."),
        "decision counters must stay dark with the ledger off"
    );

    // The same script with the ledger on lands on the same virtual
    // instant with the same outcomes: recording draws no randomness and
    // mutates no simulated state.
    let mut lc = config;
    lc.ledger = true;
    let mut c = Cloud4Home::new(lc.clone());
    let tc = drive(&mut c);
    assert_eq!(
        ta, tc,
        "enabling the ledger must not perturb outcomes or virtual time"
    );

    // And the explain renderings themselves are deterministic per seed.
    let mut d = Cloud4Home::new(lc);
    let _ = drive(&mut d);
    for id in 1..=9u64 {
        let op = cloud4home::OpId(id);
        assert_eq!(c.explain_text(op), d.explain_text(op), "op {id}");
        assert_eq!(c.explain_json(op), d.explain_json(op), "op {id}");
    }
    assert_eq!(c.slowest_text(5), d.slowest_text(5));
    assert_eq!(c.outliers_text("fetch"), d.outliers_text("fetch"));
}

#[test]
fn tiny_ring_eviction_preserves_live_chains() {
    // A four-slot ring under an op that records five decisions across two
    // causal chains (a severed stripe reassigned mid-fetch, plus a hedge
    // race on the tail stripe): the ring must overflow, and eviction must
    // drop an unchained root rather than orphan a survivor's cause link.
    let mut config = ledger_config(999);
    config.ledger_ring = 4;
    config.replication = 3;
    config.fetch_sources = 2;
    config.fetch_hedge = 0.01;
    let mut home = Cloud4Home::new(config);

    let obj = Object::synthetic("tiny/stripe.bin", 5, 8 << 20, "doc");
    let op = home.store_object(NodeId(1), obj, StorePolicy::ForceHome, true);
    home.run_until_complete(op).expect_ok();
    home.run_until_idle();
    let client = (0..home.node_count())
        .map(NodeId)
        .find(|&id| home.objects_on(id) == 0)
        .expect("a non-holding client");
    let op = home.fetch_object(client, "tiny/stripe.bin");
    home.run_for(Duration::from_millis(300));
    home.crash_node(NodeId(1));
    let report = home.run_until_complete(op);
    report.expect_ok();

    // seq is 1-based and monotone per ring: a max seq above the retained
    // count proves events were evicted — and every survivor's chain must
    // still close inside the report.
    assert!(
        report.ledger.len() <= 4,
        "the ring must stay within its configured bound: {:?}",
        report.ledger
    );
    let max_seq = report.ledger.iter().map(|e| e.seq).max().unwrap_or(0);
    assert!(
        max_seq as usize > report.ledger.len(),
        "five decisions through a four-slot ring must evict: {:?}",
        report.ledger
    );
    for kind in [
        "transfer.failed",
        "stripe.reassign",
        "hedge.launch",
        "hedge.cancel",
    ] {
        assert!(
            report.ledger.iter().any(|e| e.kind == kind),
            "the chained {kind} decision must survive eviction: {:?}",
            report.ledger
        );
    }
    assert_exact_sum(&report);
    assert_chain_closed(&report);
}
