//! Golden byte-determinism corpus for the event engine.
//!
//! Every cell in the matrix below runs a scripted workload under a fixed
//! seed and folds the complete observable output — final virtual time,
//! `RunStats`, every op report line, the metrics JSON dump, and the
//! Prometheus snapshot — into one 64-bit FNV-1a digest. The digests are
//! committed in `tests/golden/digests.json`; any engine change that
//! perturbs a single byte of any run fails here.
//!
//! The committed digests were generated with the pre-wheel `BinaryHeap`
//! scheduler and must stay valid under the timer-wheel engine: this file
//! is the same-seed → same-bytes contract in executable form. See
//! `tests/golden/README.md` for when re-blessing (`C4H_BLESS=1`) is
//! legitimate.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use cloud4home::{
    Cloud4Home, Config, FaultEvent, FaultPlan, NodeId, Object, RoutePolicy, ServiceKind,
    StorePolicy,
};

/// FNV-1a 64-bit, the same construction the proptest shim uses for test
/// seeds: dependency-free and stable across platforms.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/digests.json")
}

/// Testbed base config with tracing on so the metrics dump is non-trivial.
fn base(seed: u64) -> Config {
    let mut config = Config::paper_testbed(seed);
    config.tracing = true;
    config
}

/// The preferred client, or the next live node after it (chaos cells
/// crash nodes mid-script; the script routes around them like a real
/// client library would).
fn live_client(home: &Cloud4Home, preferred: usize) -> NodeId {
    let n = home.node_count();
    for k in 0..n {
        let id = NodeId((preferred + k) % n);
        if home.node_alive(id) {
            return id;
        }
    }
    panic!("no live node in the deployment");
}

/// The scripted workload every cell runs: stores from rotating clients
/// (two policies), fetches from different clients, a directory list, one
/// service invocation, and a delete — then drain to idle.
fn drive(home: &mut Cloud4Home, label: &str) -> String {
    let mut transcript = format!("cell={label}\n");
    let mut names = Vec::new();
    for i in 0..6u64 {
        let name = format!("golden/{label}/obj-{i}.bin");
        let obj = Object::synthetic(&name, 100 + i, (64 + 48 * i) << 10, "doc");
        let policy = if i % 2 == 0 {
            StorePolicy::MandatoryFirst
        } else {
            StorePolicy::SizeThreshold {
                cloud_at_bytes: 160 << 10,
            }
        };
        let client = live_client(home, i as usize);
        let op = home.store_object(client, obj, policy, true);
        let report = home.run_until_complete(op);
        let _ = writeln!(transcript, "store {name} -> {:?}", report.outcome);
        names.push(name);
    }
    for (i, name) in names.iter().enumerate() {
        let client = live_client(home, i + 3);
        let op = home.fetch_object(client, name);
        let report = home.run_until_complete(op);
        let _ = writeln!(transcript, "fetch {name} -> {:?}", report.outcome);
    }
    let op = home.list_objects(live_client(home, 1), &format!("golden/{label}"));
    let report = home.run_until_complete(op);
    let _ = writeln!(transcript, "list -> {:?}", report.outcome);
    let op = home.process_object(
        live_client(home, 2),
        &names[0],
        ServiceKind::Compress,
        RoutePolicy::Performance,
    );
    let report = home.run_until_complete(op);
    let _ = writeln!(transcript, "process -> {:?}", report.outcome);
    let op = home.delete_object(live_client(home, 5), &names[5]);
    let report = home.run_until_complete(op);
    let _ = writeln!(transcript, "delete -> {:?}", report.outcome);
    home.run_until_idle();
    transcript
}

/// Runs one cell and folds every observable surface into its digest.
fn run_cell(label: &str, config: Config, plan: Option<FaultPlan>) -> String {
    // Chaos perturbs placement enough that a fixed script can dead-end;
    // every cell keeps the same script and simply records outcomes.
    let mut home = Cloud4Home::new(config.clone());
    if let Some(plan) = plan.clone() {
        home.inject_faults(plan);
    }
    let mut transcript = drive(&mut home, label);
    let _ = writeln!(transcript, "now_ns={}", home.now().as_nanos());
    let _ = writeln!(transcript, "stats={:?}", home.stats());
    transcript.push_str(&home.metrics_json());
    transcript.push_str(&home.prometheus_text());
    // Belt and braces: the digest must also be reproducible within this
    // process — catches map-iteration-order dependence immediately rather
    // than as a cross-machine mystery.
    let again = {
        let mut home = Cloud4Home::new(config.clone());
        if let Some(plan) = plan {
            home.inject_faults(plan);
        }
        let mut t = drive(&mut home, label);
        let _ = writeln!(t, "now_ns={}", home.now().as_nanos());
        let _ = writeln!(t, "stats={:?}", home.stats());
        t.push_str(&home.metrics_json());
        t.push_str(&home.prometheus_text());
        t
    };
    assert!(
        transcript == again,
        "cell {label} is not self-deterministic (two in-process runs differ)"
    );
    format!("{:016x}", fnv64(transcript.as_bytes()))
}

/// A plan exercising crash, partition, bursty loss, and heal.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .at(
            Duration::from_secs(1),
            FaultEvent::BurstyLoss {
                mean_loss: 0.05,
                mean_burst_len: 4.0,
            },
        )
        .at(Duration::from_secs(3), FaultEvent::Crash(NodeId(4)))
        .at(
            Duration::from_secs(6),
            FaultEvent::Partition(vec![vec![NodeId(1)]]),
        )
        .at(Duration::from_secs(15), FaultEvent::Heal)
}

/// The seed × config matrix: every cell name maps to its digest.
fn corpus() -> BTreeMap<String, String> {
    let mut cells = BTreeMap::new();

    cells.insert(
        "defaults-s11".to_owned(),
        run_cell("defaults-s11", base(11), None),
    );
    cells.insert(
        "defaults-s12".to_owned(),
        run_cell("defaults-s12", base(12), None),
    );

    let mut config = base(11);
    config.replication = 3;
    config.replica_quorum = 2;
    cells.insert(
        "replication-quorum-s11".to_owned(),
        run_cell("replication-quorum-s11", config, None),
    );

    let mut config = base(11);
    config.replication = 3;
    config.fetch_sources = 3;
    config.fetch_hedge = 1.3;
    cells.insert(
        "striping-hedge-s11".to_owned(),
        run_cell("striping-hedge-s11", config, None),
    );

    let mut config = base(11);
    config.chunk_bytes = 64 << 10;
    config.chunk_window = 4;
    cells.insert(
        "chunked-s11".to_owned(),
        run_cell("chunked-s11", config, None),
    );

    let mut config = base(11);
    config.replication = 2;
    cells.insert(
        "chaos-s11".to_owned(),
        run_cell("chaos-s11", config, Some(chaos_plan())),
    );

    let mut config = base(11);
    config.overload.enabled = true;
    config.overload.tenant_max_inflight = 4;
    config.overload.shed_step_permille = 400;
    config.overload.shed_decay_permille = 10;
    config.overload.shed_max_permille = 900;
    cells.insert(
        "overload-s11".to_owned(),
        run_cell("overload-s11", config, None),
    );

    cells
}

fn render_digests(cells: &BTreeMap<String, String>) -> String {
    let mut out = String::from("{\n");
    for (i, (name, digest)) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{name}\": \"{digest}\"{comma}");
    }
    out.push_str("}\n");
    out
}

fn parse_digests(json: &str) -> BTreeMap<String, String> {
    // The file is machine-written by this test; parse the exact shape it
    // renders rather than pulling in a JSON dependency.
    let mut out = BTreeMap::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some((k, v)) = line.split_once(':') {
            let k = k.trim().trim_matches('"');
            let v = v.trim().trim_matches('"');
            if !k.is_empty() && !v.is_empty() && k != "{" {
                out.insert(k.to_owned(), v.to_owned());
            }
        }
    }
    out
}

/// The corpus gate: every cell's digest must match the committed file.
/// Run with `C4H_BLESS=1` to regenerate `tests/golden/digests.json` after
/// an *intentional* behavior change (see `tests/golden/README.md`).
#[test]
fn golden_corpus_digests_match() {
    let cells = corpus();
    let path = digest_path();
    if std::env::var_os("C4H_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        std::fs::write(&path, render_digests(&cells)).expect("write digests.json");
        eprintln!("blessed {} cells into {}", cells.len(), path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); run with C4H_BLESS=1 to generate it",
            path.display()
        )
    });
    let committed = parse_digests(&committed);
    let mut failures = Vec::new();
    for (name, digest) in &cells {
        match committed.get(name) {
            Some(want) if want == digest => {}
            Some(want) => failures.push(format!("{name}: committed {want}, got {digest}")),
            None => failures.push(format!("{name}: not in committed digest file")),
        }
    }
    for name in committed.keys() {
        if !cells.contains_key(name) {
            failures.push(format!("{name}: committed but no longer generated"));
        }
    }
    assert!(
        failures.is_empty(),
        "golden corpus diverged — an engine change perturbed bytes \
         (re-bless ONLY for intentional behavior changes):\n{}",
        failures.join("\n")
    );
}
