//! Media conversion: the paper's Figure 8 scenario as an application.
//!
//! "A low-end Atom-based device 'owns' a video file, which is being
//! accessed by another mobile device. The format conversion may happen at
//! the 'owner' node (Town …), or VStore++'s mechanisms for dynamic resource
//! discovery may determine that a third, desktop node, is most suitable
//! (Topt)." This example converts videos of several sizes both ways and
//! shows the dynamic-routing win.
//!
//! Run with: `cargo run -p cloud4home --example media_conversion`

use cloud4home::{
    Cloud4Home, Config, NodeId, Object, Placement, RoutePolicy, ServiceKind, StorePolicy,
};

fn main() {
    let mut config = Config::paper_testbed(99);
    // The owner netbook provides the conversion service itself, so pinning
    // there (Town) is possible; the desktop provides it too.
    config.nodes[1].services = vec![ServiceKind::Transcode];
    let mut home = Cloud4Home::new(config);

    let owner = NodeId(1); // low-end Atom owning the videos
    let mobile = NodeId(2); // the device that wants the .mp4

    println!(
        "{:>9} {:>12} {:>12} {:>9} {:>12}",
        "size MB", "Town (s)", "Topt (s)", "speedup", "runs at"
    );
    for (i, mb) in [5u64, 10, 20, 40].into_iter().enumerate() {
        let name = format!("videos/movie-{mb}mb.avi");
        let video = Object::synthetic(&name, i as u64 + 50, mb << 20, "avi");
        let op = home.store_object(owner, video, StorePolicy::ForceHome, true);
        home.run_until_complete(op).expect_ok();

        // Town: conversion pinned at the owner.
        let op =
            home.process_object_at(mobile, &name, ServiceKind::Transcode, Placement::Pin(owner));
        let town = home.run_until_complete(op);
        town.expect_ok();

        // Topt: dynamic resource discovery picks the execution site.
        let op = home.process_object(
            mobile,
            &name,
            ServiceKind::Transcode,
            RoutePolicy::Performance,
        );
        let topt = home.run_until_complete(op);
        let out = topt.expect_ok().clone();

        println!(
            "{:>9} {:>12.2} {:>12.2} {:>8.2}x {:>12}",
            mb,
            town.total().as_secs_f64(),
            topt.total().as_secs_f64(),
            town.total().as_secs_f64() / topt.total().as_secs_f64(),
            out.exec_target.unwrap_or_default()
        );
    }
    println!(
        "\nDynamic routing moves the work to the desktop despite the extra\n\
         data movement — the paper's Figure 8 observation."
    );
}
