//! Home surveillance: the paper's motivating application.
//!
//! A camera attached to a netbook captures images; each is stored under a
//! size policy and pushed through the face-detection → face-recognition
//! pipeline. The decision engine places each step on home or cloud
//! resources from live resource records — small images run near the
//! camera, large ones migrate to beefier machines.
//!
//! Run with: `cargo run -p cloud4home --example home_surveillance`

use cloud4home::{Cloud4Home, Config, NodeId, Object, RoutePolicy, ServiceKind, StorePolicy};

fn main() {
    let mut home = Cloud4Home::new(Config::paper_testbed(1234));
    let camera = NodeId(0); // the netbook the camera hangs off

    println!(
        "{:<26} {:>9} {:>13} {:>11} {:>11}",
        "image", "size", "detect@", "recognize@", "total ms"
    );
    for (i, kib) in [256u64, 512, 1024, 2048].into_iter().enumerate() {
        let name = format!("camera/front/img-{i:03}.jpg");
        let image =
            Object::synthetic(&name, i as u64 + 1, kib << 10, "jpeg").with_tag("surveillance");

        // Store with the paper's surveillance policy: images below the
        // threshold stay on home nodes for low-latency processing.
        let op = home.store_object(
            camera,
            image,
            StorePolicy::SizeThreshold {
                cloud_at_bytes: 16 << 20,
            },
            true,
        );
        home.run_until_complete(op).expect_ok();

        // Detection first ("surveillance images are processed first by a
        // face detection algorithm, followed by face recognition").
        let op = home.process_object(
            camera,
            &name,
            ServiceKind::FaceDetect,
            RoutePolicy::Performance,
        );
        let detect = home.run_until_complete(op);
        let detect_out = detect.expect_ok().clone();

        let op = home.process_object(
            camera,
            &name,
            ServiceKind::FaceRecognize,
            RoutePolicy::Performance,
        );
        let recog = home.run_until_complete(op);
        let recog_out = recog.expect_ok().clone();

        let total_ms = (detect.total().as_secs_f64() + recog.total().as_secs_f64()) * 1e3;
        println!(
            "{:<26} {:>7}KiB {:>13} {:>11} {:>11.0}",
            name,
            kib,
            detect_out.exec_target.unwrap_or_default(),
            recog_out.exec_target.unwrap_or_default(),
            total_ms
        );
        if let Some(summary) = &recog_out.summary {
            if summary.contains("best match") {
                println!("    -> alert: {summary}");
            }
        }
    }
}
