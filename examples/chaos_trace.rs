//! Produces a sample Chrome trace of the chaos acceptance scenario: the
//! reshaped eDonkey trace replayed with replication while a seeded fault
//! plan crashes a node, severs a 30 s partition, and applies bursty loss —
//! all with virtual-time tracing enabled.
//!
//! Writes `chaos_trace.json` (open in `chrome://tracing` or Perfetto),
//! `chaos_metrics.json` (flat counters + histograms), `chaos_health.prom`
//! (Prometheus text snapshot), `chaos_series.json` (gauge time series),
//! `chaos_postmortem.json` (flight-recorder dumps), and — with the causal
//! ledger on — `chaos_explain.txt` (the slowest op's annotated
//! critical-path timeline plus the `slowest` summary) to the current
//! directory, or to the directory given as the first argument. The output
//! is byte-deterministic: same seed, same bytes.
//!
//! Run with: `cargo run -p cloud4home --example chaos_trace`

use std::time::Duration;

use c4h_workloads::{generate, OpKind, TraceConfig};
use cloud4home::{Cloud4Home, Config, FaultEvent, FaultPlan, NodeId, Object, StorePolicy};

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());

    let mut config = Config::paper_testbed(53);
    config.replication = 2;
    config.tracing = true;
    config.ledger = true;
    let mut home = Cloud4Home::new(config);
    home.inject_faults(
        FaultPlan::new()
            .at(
                Duration::ZERO,
                FaultEvent::BurstyLoss {
                    mean_loss: 0.10,
                    mean_burst_len: 8.0,
                },
            )
            .at(Duration::from_secs(5), FaultEvent::Crash(NodeId(4)))
            .at(
                Duration::from_secs(8),
                FaultEvent::Partition(vec![vec![NodeId(2)]]),
            )
            .at(Duration::from_secs(38), FaultEvent::Heal),
    );

    let mut trace_cfg = TraceConfig::paper_default(60);
    trace_cfg.files = 40;
    trace_cfg.size_override = Some((256 << 10, 1 << 20));
    let trace = generate(&trace_cfg, 9);

    const CLIENTS: [usize; 4] = [0, 1, 3, 5];
    let (mut ok, mut failed) = (0u32, 0u32);
    let mut slowest = None;
    for top in &trace.ops {
        let client = NodeId(CLIENTS[top.client % CLIENTS.len()]);
        let file = &trace.files[top.file];
        let op = match top.op {
            OpKind::Store => {
                let obj = Object::synthetic(
                    &file.name,
                    file.content_seed,
                    file.size_bytes,
                    file.kind.content_type(),
                );
                home.store_object(client, obj, StorePolicy::MandatoryFirst, true)
            }
            OpKind::Fetch => home.fetch_object(client, &file.name),
        };
        let report = home.run_until_complete(op);
        if report.outcome.is_ok() {
            ok += 1;
        } else {
            failed += 1;
        }
        if slowest.is_none_or(|(_, worst)| report.total() > worst) {
            slowest = Some((report.id, report.total()));
        }
    }

    home.run_until_idle();

    let trace_path = format!("{dir}/chaos_trace.json");
    let metrics_path = format!("{dir}/chaos_metrics.json");
    let prom_path = format!("{dir}/chaos_health.prom");
    let series_path = format!("{dir}/chaos_series.json");
    let postmortem_path = format!("{dir}/chaos_postmortem.json");
    std::fs::write(&trace_path, home.chrome_trace_json()).expect("write trace");
    std::fs::write(&metrics_path, home.metrics_json()).expect("write metrics");
    std::fs::write(&prom_path, home.prometheus_text()).expect("write prom");
    std::fs::write(&series_path, home.series_json()).expect("write series");
    std::fs::write(&postmortem_path, home.postmortem_json()).expect("write postmortem");
    let explain_path = format!("{dir}/chaos_explain.txt");
    let (worst_id, _) = slowest.expect("the trace replays at least one op");
    let explain = format!("{}\n{}", home.slowest_text(5), home.explain_text(worst_id));
    std::fs::write(&explain_path, &explain).expect("write explain");
    println!(
        "{ok} ops ok, {failed} failed under chaos across {} of virtual time",
        format_args!("{:.1}s", home.now().as_secs_f64()),
    );
    print!("{}", home.health_text());
    print!("{explain}");
    println!(
        "wrote {trace_path}, {metrics_path}, {prom_path}, {series_path}, {postmortem_path}, \
         {explain_path}"
    );
}
