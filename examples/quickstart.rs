//! Quickstart: build the paper's testbed, store an object, fetch it back,
//! and run a processing service on it.
//!
//! Run with: `cargo run -p cloud4home --example quickstart`

use cloud4home::{Cloud4Home, Config, NodeId, Object, RoutePolicy, ServiceKind, StorePolicy};

fn main() {
    // Five Atom netbooks + one desktop gateway + an S3/EC2-style cloud,
    // with the ICDCS'11 testbed's network characteristics. Everything runs
    // in deterministic virtual time.
    let mut home = Cloud4Home::new(Config::paper_testbed(42));
    let gateway = home.gateway().expect("the paper testbed has a gateway");
    println!(
        "home cloud up: {} nodes, gateway = {}",
        home.node_count(),
        home.node_name(gateway)
    );

    // 1. Store a surveillance image from netbook 0. The size-threshold
    //    policy keeps small objects in the home cloud.
    let image = Object::synthetic("camera/front/img-001.jpg", 7, 512 * 1024, "jpeg");
    let op = home.store_object(
        NodeId(0),
        image,
        StorePolicy::SizeThreshold {
            cloud_at_bytes: 20 << 20,
        },
        true,
    );
    let report = home.run_until_complete(op);
    report.expect_ok();
    println!(
        "stored  {:28} in {:>8.1} ms (dht {:.1} ms, channel {:.1} ms)",
        report.object,
        report.total().as_secs_f64() * 1e3,
        report.breakdown.dht.as_secs_f64() * 1e3,
        report.breakdown.inter_domain.as_secs_f64() * 1e3,
    );

    // 2. Fetch it from another device: the metadata layer locates it
    //    transparently.
    let op = home.fetch_object(NodeId(3), "camera/front/img-001.jpg");
    let report = home.run_until_complete(op);
    let out = report.expect_ok();
    println!(
        "fetched {:28} in {:>8.1} ms ({} bytes, via_cloud={})",
        report.object,
        report.total().as_secs_f64() * 1e3,
        out.bytes,
        out.via_cloud
    );

    // 3. Run face detection, letting the decision engine pick the best
    //    execution site from live resource records.
    let op = home.process_object(
        NodeId(0),
        "camera/front/img-001.jpg",
        ServiceKind::FaceDetect,
        RoutePolicy::Performance,
    );
    let report = home.run_until_complete(op);
    let out = report.expect_ok();
    println!(
        "processed on {:12} in {:>8.1} ms (decision {:.1} ms, exec {:.1} ms) -> {}",
        out.exec_target.clone().unwrap_or_default(),
        report.total().as_secs_f64() * 1e3,
        report.breakdown.decision.as_secs_f64() * 1e3,
        report.breakdown.exec.as_secs_f64() * 1e3,
        out.summary.clone().unwrap_or_default()
    );
}
