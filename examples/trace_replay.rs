//! Replay of the paper's (reshaped) eDonkey access trace with adaptive
//! placement.
//!
//! Six emulated clients issue a 60/40 store/fetch mix over a shared file
//! population; the [`AdaptivePlacement`] learner decides home-vs-cloud
//! placement per object from the throughput it has observed so far, and the
//! summary shows where data ended up and what each class of access cost.
//!
//! Run with: `cargo run -p cloud4home --example trace_replay`

use c4h_workloads::{generate, OpKind, TraceConfig};
use cloud4home::{AdaptivePlacement, Cloud4Home, Config, NodeId, Object};

fn main() {
    let mut home = Cloud4Home::new(Config::paper_testbed(77));
    let mut learner = AdaptivePlacement::new();

    // A scaled-down slice of the paper's workload: the full 1300-file
    // population but smaller objects so the replay spans minutes of
    // virtual time rather than days.
    let mut cfg = TraceConfig::paper_default(120);
    cfg.files = 200;
    cfg.size_override = Some((256 << 10, 4 << 20));
    let trace = generate(&cfg, 2011);

    let mut stores = 0u64;
    let mut fetches = 0u64;
    let mut cloud_ops = 0u64;
    let mut bytes_moved = 0u64;
    let mut failures = 0u64;
    let start = home.now();

    for top in &trace.ops {
        // Honour the trace's client think time between accesses.
        home.run_for(top.think);
        let client = NodeId(top.client % home.node_count());
        let file = &trace.files[top.file];
        let report = match top.op {
            OpKind::Store => {
                stores += 1;
                let mut obj = Object::synthetic(
                    &file.name,
                    file.content_seed,
                    file.size_bytes,
                    file.kind.content_type(),
                );
                obj.private = file.kind.is_private();
                let policy = learner.policy_for(&obj);
                let op = home.store_object(client, obj, policy, true);
                home.run_until_complete(op)
            }
            OpKind::Fetch => {
                fetches += 1;
                let op = home.fetch_object(client, &file.name);
                home.run_until_complete(op)
            }
        };
        match &report.outcome {
            Ok(out) => {
                if out.via_cloud {
                    cloud_ops += 1;
                }
                bytes_moved += out.bytes;
                learner.observe(&report);
            }
            Err(_) => failures += 1,
        }
    }

    let elapsed = (home.now() - start).as_secs_f64();
    let (h_bps, c_bps) = learner.estimates_bps();
    println!(
        "replayed {} operations in {:.1} virtual minutes",
        trace.ops.len(),
        elapsed / 60.0
    );
    println!("  stores: {stores}   fetches: {fetches}   failures: {failures}");
    println!(
        "  via cloud: {cloud_ops} ops ({:.0}%)   data moved: {:.1} MiB",
        100.0 * cloud_ops as f64 / trace.ops.len() as f64,
        bytes_moved as f64 / (1 << 20) as f64
    );
    println!(
        "  learned rates: home {:.2} MB/s, cloud {:.3} MB/s",
        h_bps / 1e6,
        c_bps / 1e6
    );
    println!(
        "  aggregate throughput: {:.2} MB/s",
        bytes_moved as f64 / (1 << 20) as f64 / elapsed
    );
}
