//! Neighborhood-scale Cloud4Home: the paper's future-work scenario.
//!
//! "A concrete example … would be a 'neighborhood security' system in which
//! multiple Cloud4Home systems interact to provide effective security
//! services for entire neighborhoods." This example federates two
//! households' devices into one twelve-node overlay, shares surveillance
//! content across houses under the privacy policy, and keeps serving while
//! one household's devices churn off-line.
//!
//! Run with: `cargo run -p cloud4home --example neighborhood_sharing`

use std::time::Duration;

use cloud4home::{
    Cloud4Home, Config, NodeId, NodeSpec, Object, RoutePolicy, ServiceKind, StorePolicy,
};

fn main() {
    // Two households: each contributes netbooks plus one desktop.
    let mut config = Config::paper_testbed(2024);
    config.nodes.clear();
    for house in ["maple-st-12", "maple-st-14"] {
        for i in 0..4 {
            let mut n = NodeSpec::netbook(&format!("{house}/netbook-{i}"));
            if i == 0 {
                n.services = vec![ServiceKind::FaceDetect, ServiceKind::FaceRecognize];
            }
            config.nodes.push(n);
        }
        let mut d = NodeSpec::desktop(&format!("{house}/desktop"));
        d.gateway = house == "maple-st-12"; // one shared uplink
        d.services = vec![
            ServiceKind::FaceDetect,
            ServiceKind::FaceRecognize,
            ServiceKind::Transcode,
        ];
        config.nodes.push(d);
    }
    let mut home = Cloud4Home::new(config);
    println!(
        "neighborhood overlay: {} devices across 2 houses",
        home.node_count()
    );

    // House 14's camera captures events; recognition may run on either
    // house's hardware.
    let camera = NodeId(5); // maple-st-14/netbook-0
    for i in 0..3u64 {
        let name = format!("maple-st-14/camera/evt-{i}.jpg");
        let img = Object::synthetic(&name, i + 1, 768 << 10, "jpeg").private();
        let op = home.store_object(camera, img, StorePolicy::Privacy, true);
        home.run_until_complete(op).expect_ok();
        let op = home.process_object(
            camera,
            &name,
            ServiceKind::FaceRecognize,
            RoutePolicy::Performance,
        );
        let r = home.run_until_complete(op);
        let out = r.expect_ok();
        println!(
            "event {i}: recognized on {:24} in {:>6.0} ms",
            out.exec_target.clone().unwrap_or_default(),
            r.total().as_secs_f64() * 1e3
        );
    }

    // House 12 goes dark (power cut): its devices crash. The overlay's
    // failure detection removes them and the surviving house keeps working.
    println!("\n-- house maple-st-12 loses power --");
    for i in 0..5 {
        home.crash_node(NodeId(i));
    }
    home.run_for(Duration::from_secs(15));

    let name = "maple-st-14/camera/evt-after.jpg";
    let img = Object::synthetic(name, 9, 768 << 10, "jpeg").private();
    let op = home.store_object(camera, img, StorePolicy::Privacy, true);
    home.run_until_complete(op).expect_ok();
    let op = home.process_object(
        camera,
        name,
        ServiceKind::FaceRecognize,
        RoutePolicy::Performance,
    );
    let r = home.run_until_complete(op);
    let out = r.expect_ok();
    println!(
        "after churn: recognized on {:24} in {:>6.0} ms — service continues",
        out.exec_target.clone().unwrap_or_default(),
        r.total().as_secs_f64() * 1e3
    );
}
